package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// newObsServer boots a service with both the job API and the flight-recorder
// debug routes mounted.
func newObsServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	mux := telemetry.NewMux(svc.Registry(), telemetry.WithReadiness(svc.Ready))
	svc.RegisterRoutes(mux)
	svc.RegisterDebugRoutes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// syncBuffer is an access-log sink safe to read while workers write.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// accessLineFor finds the access-log line for one request ID.
func accessLineFor(t *testing.T, log *syncBuffer, id string) accessLine {
	t.Helper()
	for _, raw := range strings.Split(log.String(), "\n") {
		if raw == "" || !strings.Contains(raw, id) {
			continue
		}
		var line accessLine
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			t.Fatalf("access log line %q: %v", raw, err)
		}
		if line.RequestID == id {
			return line
		}
	}
	t.Fatalf("no access-log line for request %s in:\n%s", id, log.String())
	return accessLine{}
}

// TestRequestLatencyAttribution is the PR's acceptance test (run under -race
// in CI): a request that hits queue backpressure, at least one launch retry
// and a cache miss must produce a span tree whose phase attribution —
// queue_wait, device_wait, retry_backoff, cache_lookup, the pipeline stages —
// sums to within 5% of the access-log total, and the same request must be
// retrievable by ID from /debug/requests with matching phase numbers.
func TestRequestLatencyAttribution(t *testing.T) {
	const reqID = "acc-test-0001"
	log := &syncBuffer{}
	gate := make(chan struct{})
	var gated atomic.Bool
	svc, ts := newObsServer(t, Config{
		Workers: 1, QueueDepth: 4,
		AccessLog: log,
		// Every third launch faults, so any job with a few launches sees at
		// least one retried launch (and its backoff) without ever degrading.
		DeviceFaults: func(i int) cuda.FaultInjector {
			return &cuda.FaultPlan{EveryNth: 3}
		},
		testJobStart: func(*Job) {
			// Only the first (blocker) job holds the worker.
			if gated.CompareAndSwap(false, true) {
				<-gate
			}
		},
	})

	// Occupy the single worker so the measured request queues.
	if _, err := svc.Submit(mustRequest(t, 64, 8)); err != nil {
		t.Fatalf("blocker submit: %v", err)
	}

	type post struct {
		resp *http.Response
		jr   jobResponseJSON
	}
	posted := make(chan post, 1)
	go func() {
		body := `{"input":"peppers","target":"gradient","size":64,"tiles":8,"algorithm":"approximation-parallel"}`
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/mosaic", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", reqID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("POST: %v", err)
			close(posted)
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var jr jobResponseJSON
		_ = json.Unmarshal(data, &jr)
		posted <- post{resp, jr}
	}()

	// Hold the measured request in the queue long enough for a measurable
	// queue_wait, then let the worker go.
	waitFor(t, func() bool {
		return svc.Registry().Snapshot().Gauges["mosaic_service_queue_depth"] >= 1
	}, "measured request never queued")
	time.Sleep(20 * time.Millisecond)
	close(gate)

	p, ok := <-posted
	if !ok {
		t.FailNow()
	}
	if p.resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", p.resp.StatusCode, p.jr.Error)
	}
	if got := p.resp.Header.Get("X-Request-ID"); got != reqID {
		t.Fatalf("X-Request-ID echo = %q, want %q", got, reqID)
	}
	if p.jr.RequestID != reqID {
		t.Fatalf("response request_id = %q, want %q", p.jr.RequestID, reqID)
	}
	if p.jr.Cache != "miss" {
		t.Fatalf("cache = %q, want miss", p.jr.Cache)
	}
	if p.jr.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1 (every=3 fault plan)", p.jr.Retries)
	}
	if p.jr.Degraded {
		t.Fatal("request degraded; the fault plan should only force retries")
	}

	// The flight recorder must serve the same request by ID.
	dresp, err := http.Get(ts.URL + "/debug/requests/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests/%s: status %d", reqID, dresp.StatusCode)
	}
	var rec RecordedRequest
	if err := json.NewDecoder(dresp.Body).Decode(&rec); err != nil {
		t.Fatalf("decode recorded request: %v", err)
	}
	if rec.RequestID != reqID || rec.Outcome != "done" || rec.Cache != "miss" {
		t.Fatalf("recorded = %+v, want id %s outcome done cache miss", rec, reqID)
	}
	if rec.Retries != p.jr.Retries {
		t.Fatalf("recorded retries %d != response retries %d", rec.Retries, p.jr.Retries)
	}

	// Phase attribution: the named journey phases are present, backpressure
	// and retries left their marks, and the exclusive phase times sum to the
	// request total within 5%.
	for _, phase := range []string{"request", "queue_wait", "device_wait", "cache_lookup", "error_matrix"} {
		if _, ok := rec.Phases[phase]; !ok {
			t.Errorf("phase %q missing from %v", phase, rec.Phases)
		}
	}
	if rec.Phases["queue_wait"] <= 0 {
		t.Errorf("queue_wait = %d, want > 0 (the request queued behind the blocker)", rec.Phases["queue_wait"])
	}
	if rec.Phases["retry_backoff"] <= 0 {
		t.Errorf("retry_backoff = %d, want > 0 (a launch retried)", rec.Phases["retry_backoff"])
	}
	var sum int64
	for _, ns := range rec.Phases {
		sum += ns
	}
	if rec.DurationNS <= 0 {
		t.Fatalf("recorded duration %d, want > 0", rec.DurationNS)
	}
	if diff := rec.DurationNS - sum; diff < 0 || float64(diff) > 0.05*float64(rec.DurationNS) {
		t.Fatalf("phases sum %d vs total %d: off by %d (> 5%%)", sum, rec.DurationNS, diff)
	}

	// The access log agrees with the recorder, number for number.
	line := accessLineFor(t, log, reqID)
	if line.DurationNS != rec.DurationNS {
		t.Fatalf("access-log duration %d != recorded %d", line.DurationNS, rec.DurationNS)
	}
	for phase, ns := range rec.Phases {
		if line.PhasesNS[phase] != ns {
			t.Fatalf("access-log phase %s = %d, recorded %d", phase, line.PhasesNS[phase], ns)
		}
	}
	if line.Outcome != "done" || line.Cache != "miss" || line.Retries != rec.Retries {
		t.Fatalf("access-log line %+v disagrees with recorder %+v", line, rec)
	}

	// The span tree is intact: one request root carrying the ID annotation.
	if len(rec.Spans) != 1 || rec.Spans[0].Name != trace.SpanRequest {
		t.Fatalf("want a single %q root, got %d roots", trace.SpanRequest, len(rec.Spans))
	}
	if got := rec.Spans[0].Attrs[trace.AttrRequestID]; got != reqID {
		t.Fatalf("root request_id attr = %q, want %q", got, reqID)
	}

	// The queue-wait histogram carries a request-ID exemplar.
	var prom strings.Builder
	if err := svc.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `request_id="`+reqID+`"`) {
		t.Fatal("no request-ID exemplar in the Prometheus exposition")
	}
	if !strings.Contains(prom.String(), `mosaic_request_phase_ns_bucket{phase="queue_wait"`) {
		t.Fatal("mosaic_request_phase_ns{phase=queue_wait} series missing")
	}
}

// TestErroredRequestRetained: a timed-out request lands in the flight
// recorder's errored ring with its outcome and error preserved.
func TestErroredRequestRetained(t *testing.T) {
	log := &syncBuffer{}
	svc, ts := newObsServer(t, Config{
		Workers:   1,
		AccessLog: log,
		testJobStart: func(j *Job) {
			<-j.ctx.Done() // burn the whole deadline
		},
	})
	req := mustRequest(t, 64, 8)
	req.RequestID = "will-time-out"
	req.Timeout = 30 * time.Millisecond
	job, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()

	dresp, err := http.Get(ts.URL + "/debug/requests/will-time-out")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var rec RecordedRequest
	if err := json.NewDecoder(dresp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != "timeout" || rec.Error == "" {
		t.Fatalf("recorded %+v, want outcome timeout with an error", rec)
	}
	if line := accessLineFor(t, log, "will-time-out"); line.Outcome != "timeout" {
		t.Fatalf("access-log outcome %q, want timeout", line.Outcome)
	}

	var list struct {
		Errored []recordedSummary `json:"errored"`
	}
	lresp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range list.Errored {
		if s.RequestID == "will-time-out" {
			found = true
		}
	}
	if !found {
		t.Fatalf("timed-out request missing from errored list: %+v", list.Errored)
	}
}

// TestConcurrentRequestTraces: many workers into one registry and one flight
// recorder must yield no torn span trees — every request's tree has exactly
// one closed request root carrying its own ID, and phases that sum to its
// total. Run under -race in CI.
func TestConcurrentRequestTraces(t *testing.T) {
	svc, _ := newObsServer(t, Config{Workers: 4, QueueDepth: 16, Devices: 2, DeviceWorkers: 2})
	scenes := []string{"lena", "sailboat", "airplane", "peppers", "barbara", "baboon", "tiffany", "plasma"}
	var wg sync.WaitGroup
	for i, name := range scenes {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			req := mustRequest(t, 64, 8)
			req.Input = mustScene(t, name, 64)
			req.RequestID = fmt.Sprintf("conc-%02d", i)
			job, err := svc.Submit(req)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			<-job.Done()
		}(i, name)
	}
	wg.Wait()

	for i := range scenes {
		id := fmt.Sprintf("conc-%02d", i)
		rec, ok := svc.recorder.get(id)
		if !ok {
			t.Errorf("%s: not retained (slow cap holds all of them)", id)
			continue
		}
		if len(rec.Spans) != 1 || rec.Spans[0].Name != trace.SpanRequest {
			t.Errorf("%s: torn tree: %d roots", id, len(rec.Spans))
			continue
		}
		root := rec.Spans[0]
		if root.Attrs[trace.AttrRequestID] != id {
			t.Errorf("%s: root annotated %q — trees crossed between workers", id, root.Attrs[trace.AttrRequestID])
		}
		if root.Duration <= 0 {
			t.Errorf("%s: unfinished root span", id)
		}
		var sum int64
		for _, ns := range rec.Phases {
			sum += ns
		}
		if diff := rec.DurationNS - sum; diff < 0 || float64(diff) > 0.05*float64(rec.DurationNS) {
			t.Errorf("%s: phases sum %d vs total %d", id, sum, rec.DurationNS)
		}
	}
}

// TestFlightRecorderConcurrent hammers one recorder from many goroutines
// (run under -race): record, list and get must stay consistent and bounded.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := newFlightRecorder(8, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				outcome := "done"
				if i%3 == 0 {
					outcome = "error"
				}
				fr.record(&RecordedRequest{
					RequestID:  fmt.Sprintf("r-%d-%d", g, i),
					Outcome:    outcome,
					DurationNS: int64(g*1000 + i),
				})
				if i%17 == 0 {
					fr.list()
					fr.get(fmt.Sprintf("r-%d-%d", g, i))
				}
			}
		}(g)
	}
	wg.Wait()
	slowest, errored := fr.list()
	if len(slowest) != 8 || len(errored) != 8 {
		t.Fatalf("retained %d slowest / %d errored, want 8 / 8", len(slowest), len(errored))
	}
	for i := 1; i < len(slowest); i++ {
		if slowest[i].DurationNS > slowest[i-1].DurationNS {
			t.Fatalf("slowest list not sorted: %v", slowest)
		}
	}
	for _, s := range slowest {
		if _, ok := fr.get(s.RequestID); !ok {
			t.Fatalf("listed request %s not retrievable", s.RequestID)
		}
	}
}
