package service

import (
	"sync"
	"time"
)

// defaultAdmissionMinSamples is how many settled jobs must have trained the
// estimator before admission control acts on its predictions. Below the
// threshold every job is admitted: a cold estimator extrapolating from one
// or two samples would reject half the warm-up traffic.
const defaultAdmissionMinSamples = 8

// estimatorAlpha is the EWMA smoothing factor. 0.2 weights the last ~5 jobs
// most heavily — fast enough to track a cache going warm or a device being
// quarantined, slow enough that one outlier does not swing admission.
const estimatorAlpha = 0.2

// phaseEstimator is the predictive half of admission control: an online
// exponentially-weighted estimate of per-phase and whole-job latency, fed
// with every successfully settled job's phase attribution — the same
// numbers the mosaic_request_phase_ns histograms record, folded into a
// queryable mean instead of buckets. Submit asks it "if this job enters the
// queue now, when does it finish?" and rejects (or lets anytime mode
// degrade) jobs whose answer exceeds their deadline.
//
// Only complete (non-partial) successes train it: failures and deadline
// miss partials stopped early, so folding them in would bias the mean
// toward optimism exactly when the service is overloaded.
type phaseEstimator struct {
	mu         sync.Mutex
	minSamples int64
	phases     map[string]float64 // EWMA exclusive nanoseconds per phase
	job        float64            // EWMA whole-job nanoseconds (root span duration)
	n          int64              // settled jobs observed
}

func newPhaseEstimator(minSamples int) *phaseEstimator {
	if minSamples <= 0 {
		minSamples = defaultAdmissionMinSamples
	}
	return &phaseEstimator{minSamples: int64(minSamples), phases: make(map[string]float64)}
}

// observe folds one settled job's phase attribution and total wall time in.
func (e *phaseEstimator) observe(phases map[string]int64, totalNS int64) {
	if totalNS <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.job = float64(totalNS)
	} else {
		e.job += estimatorAlpha * (float64(totalNS) - e.job)
	}
	for phase, ns := range phases {
		if cur, ok := e.phases[phase]; ok {
			e.phases[phase] = cur + estimatorAlpha*(float64(ns)-cur)
		} else {
			e.phases[phase] = float64(ns)
		}
	}
	e.n++
}

// samples returns how many jobs have trained the estimator.
func (e *phaseEstimator) samples() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// jobMean returns the EWMA whole-job latency; ok is false before the first
// sample.
func (e *phaseEstimator) jobMean() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		return 0, false
	}
	return time.Duration(e.job), true
}

// phaseMean returns the EWMA exclusive latency of one phase.
func (e *phaseEstimator) phaseMean(phase string) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.phases[phase]
	return time.Duration(v), ok
}

// estimate predicts the completion latency of a job submitted now behind
// `queued` waiting jobs drained by `workers` workers: the queue drains in
// waves of `workers` jobs per mean job time, then the new job runs. ok is
// false until minSamples jobs have trained the estimator — admission
// control must not act on a cold mean.
func (e *phaseEstimator) estimate(queued, workers int) (time.Duration, bool) {
	if workers < 1 {
		workers = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n < e.minSamples {
		return 0, false
	}
	waves := queued/workers + 1
	return time.Duration(e.job * float64(waves)), true
}
