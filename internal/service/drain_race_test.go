package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDrainSubmitNoHang is the drain/submit race audit pinned as a test: a
// job accepted at the instant Drain flips readiness must still settle — done
// or failed, never a forever-open Done channel. Submissions race against
// Drain from many goroutines; once Drain returns, every accepted job must
// already be settled (the workers drained the closed queue, and the claim
// CAS guarantees exactly one settler per job even when batch waves claim
// queued jobs concurrently). Run under -race in CI.
func TestDrainSubmitNoHang(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 64})
	input := mustScene(t, "lena", 32)
	target := mustScene(t, "gradient", 32)

	var accepted sync.Map
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				// Same content on purpose: the submissions also feed the
				// batching index, so waves, workers and Drain race for claims.
				job, err := svc.Submit(&Request{Input: input, Target: target, Tiles: 4})
				if err != nil {
					if !errors.Is(err, ErrDraining) && !errors.Is(err, ErrQueueFull) {
						t.Errorf("Submit: unexpected error %v", err)
					}
					continue
				}
				accepted.Store(job, struct{}{})
			}
		}()
	}
	close(start)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// No sleep before Drain: the interesting interleaving is Drain flipping
	// readiness in the middle of the submission storm.
	err := svc.Drain(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}

	accepted.Range(func(k, _ any) bool {
		job := k.(*Job)
		select {
		case <-job.Done():
			st, _, jerr := job.Snapshot()
			if st != JobDone && st != JobFailed {
				t.Errorf("job %s settled in state %s (err %v)", job.ID, st, jerr)
			}
		default:
			t.Errorf("job %s was accepted but its Done channel never closed", job.ID)
		}
		return true
	})
	svc.Close()
}
