// Package service is the request-serving layer above the photomosaic
// pipeline: a bounded job queue drained by a worker pool, a device pool that
// serialises kernel launches per virtual device (so the cuda launch-guard
// panic can never fire in server context), and a content-hash LRU cache of
// prepared Step-2 work so repeated requests against the same target skip the
// error matrix entirely. cmd/mosaicd mounts its HTTP API (http.go) next to
// the telemetry debug endpoints.
//
// Degradation under load is explicit: a full queue rejects with
// ErrQueueFull (HTTP 429 + Retry-After) instead of queuing unboundedly,
// per-job deadlines propagate as context cancellation through every
// pipeline stage, and Drain completes in-flight jobs while /readyz reports
// not-ready so load balancers stop routing.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"image/png"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/imgutil"
	"repro/internal/metric"
	"repro/internal/retry"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Rejection errors returned by Submit; the HTTP layer maps them to 429 and
// 503 respectively.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrDraining  = errors.New("service: draining, not accepting jobs")
)

// ErrDeadlineUnmeetable is returned by Submit when predictive admission
// control estimates the job cannot finish inside its deadline (or the
// deadline has already expired) and the request did not opt into anytime
// mode. The HTTP layer maps it to 429 with a Retry-After computed from the
// estimate — rejecting at submit costs the client one round trip instead of
// a full deadline spent waiting for a guaranteed 504.
var ErrDeadlineUnmeetable = errors.New("service: estimated completion exceeds the request deadline")

// Config sizes the service. The zero value of any field selects the
// documented default.
type Config struct {
	// Registry receives the service metrics; nil creates a private one.
	Registry *telemetry.Registry
	// Workers is the number of concurrent jobs (default 4).
	Workers int
	// QueueDepth bounds the jobs waiting for a worker (default 16); a full
	// queue rejects with ErrQueueFull.
	QueueDepth int
	// Devices and DeviceWorkers size the device pool (defaults 1 pool
	// device, all-core workers). Workers > Devices is the interesting
	// regime: jobs contend for devices and serialise through the pool.
	Devices       int
	DeviceWorkers int
	// CacheBytes bounds the prepared-work cache (default 256 MiB;
	// negative disables caching).
	CacheBytes int64
	// DefaultTimeout is the per-job deadline when a request names none
	// (default 60s); MaxTimeout caps client-requested deadlines (default
	// 5m). The deadline starts at Submit, so time queued counts against it.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// JobsRetain bounds how many finished jobs stay pollable via
	// GET /v1/jobs/{id} (default 256); the oldest finished jobs are dropped
	// first.
	JobsRetain int
	// MaxImageSide caps the working image side accepted over HTTP
	// (default 1024).
	MaxImageSide int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Retry is the per-kernel-launch retry schedule jobs execute under
	// (zero value = retry defaults: 3 attempts, exponential backoff with
	// jitter).
	Retry retry.Policy
	// NoCPUFallback disables host degradation: jobs whose device retries
	// are exhausted fail instead of falling back, and /readyz reports
	// not-ready while every device is quarantined.
	NoCPUFallback bool
	// NoBatching disables Finish micro-batching. By default, when a worker
	// finishes a job it claims every still-queued job sharing the same
	// content hash and settles them in one wave on the same device lease —
	// each follower skips its own queue wait for a device, cache lookup and
	// acquire/launch overhead. Waves are coalescing only: outputs are
	// bit-identical to unbatched execution (FinishContext is deterministic
	// per request on a shared immutable Prepared).
	NoBatching bool
	// DefaultSolver is the Step-3 exact matcher used when a request names
	// none (empty = JV). Per-request Solver overrides it.
	DefaultSolver assign.Algorithm
	// FailureThreshold and ProbeInterval tune the device pool's circuit
	// breaker and health probe (see PoolConfig).
	FailureThreshold int
	ProbeInterval    time.Duration
	// DeviceFaults optionally installs a fault injector on pool device i —
	// the -chaos drill hook. nil injectors leave devices healthy.
	DeviceFaults func(i int) cuda.FaultInjector
	// AccessLog, when set, receives one JSON line per settled request —
	// finished jobs and queue rejections alike. Writes are serialised by the
	// service; nil disables access logging.
	AccessLog io.Writer
	// RecorderSlow and RecorderErrors size the flight recorder: how many
	// slowest requests (default 32) and how many errored/degraded requests
	// (default 64) retain their full span trees for /debug/requests.
	RecorderSlow   int
	RecorderErrors int
	// Anytime makes graceful degradation the default deadline policy
	// (mosaicd's -anytime): a job that misses its deadline returns the best
	// mosaic found so far marked partial, instead of failing with a
	// deadline error, and admission control degrades instead of rejecting.
	// Requests override the policy per job via Request.Anytime.
	Anytime bool
	// NoAdmission disables predictive admission control: jobs are admitted
	// regardless of the latency estimate (queue-full backpressure still
	// applies).
	NoAdmission bool
	// AdmissionMinSamples is how many settled jobs must train the latency
	// estimator before admission control starts rejecting (default 8).
	AdmissionMinSamples int

	// testJobStart, when set, runs at the top of every job execution —
	// the test seam for holding workers busy deterministically.
	testJobStart func(*Job)
}

func (c *Config) applyDefaults() {
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Devices <= 0 {
		c.Devices = 1
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.JobsRetain <= 0 {
		c.JobsRetain = 256
	}
	if c.MaxImageSide <= 0 {
		c.MaxImageSide = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// Request is one decoded mosaic job: square, equal-sized grayscale images
// plus the pipeline parameters the service exposes.
type Request struct {
	Input, Target *imgutil.Gray
	Tiles         int
	Algorithm     core.Algorithm
	Metric        metric.Metric
	NoHistMatch   bool
	// Solver picks the exact matcher for the optimization algorithm
	// (empty = the service's DefaultSolver, which itself defaults to JV).
	// The certified approximate solvers (auction-device, sinkhorn) trade
	// ≤1% assignment cost for materially lower matching latency.
	Solver assign.Algorithm
	// Timeout is the per-job deadline; 0 selects the configured default,
	// values above MaxTimeout are clamped to it.
	Timeout time.Duration
	// RequestID is the caller-supplied correlation ID (the X-Request-ID
	// header). Submit sanitizes it and mints a fresh one when empty or
	// invalid, writing the effective ID back to this field.
	RequestID string
	// Route labels the submission path in the access log ("/v1/mosaic";
	// direct API callers may leave it empty).
	Route string
	// Anytime selects the deadline policy: nil inherits the service default
	// (Config.Anytime), true makes deadline misses return the best-so-far
	// mosaic marked partial (HTTP 200 + X-Mosaic-Partial) and exempts the
	// job from admission rejection, false keeps the strict timeout
	// behaviour (504, and predictive 429s at submit).
	Anytime *bool
	// Deadline, when non-zero, is the absolute client deadline — the
	// router's X-Request-Deadline propagation. It caps Timeout: the client
	// stops waiting at Deadline no matter what the body asked for.
	Deadline time.Time
}

// ContentKey returns the request's content hash (core.ContentHash) — the
// prepared-work cache key, the peek address and the cluster router's
// consistent-hash routing key.
func (r *Request) ContentKey() string {
	return cacheKey(r.Input, r.Target, r.Tiles, r.Metric, r.NoHistMatch)
}

// JobState is the lifecycle of a job.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobResult is the outcome of a finished job.
type JobResult struct {
	PNG        []byte
	TotalError int64
	CacheHit   bool
	Stats      trace.Stats
	Elapsed    time.Duration
	// Partial marks an anytime job that ran out of deadline budget before
	// the search converged: the mosaic is valid and TotalError exact, but
	// more budget would have refined it further.
	Partial bool
	// CertifiedGap is the certified optimality gap of Step 3's matcher when
	// an early-exit certified solver ran (auction-device, sinkhorn); 0 for
	// the exact solvers and the local searches.
	CertifiedGap float64
}

// Job is one queued/running/finished mosaic generation. Fields behind mu
// are written by the worker and read by status handlers.
type Job struct {
	ID string
	// RequestID is the job's correlation ID — caller-supplied or minted at
	// Submit — echoed in responses and threaded by context through the
	// pipeline.
	RequestID string
	Route     string
	Created   time.Time

	req    *Request
	ctx    context.Context
	cancel context.CancelFunc

	// The request's span tree. reqSpan (the SpanRequest root) opens at
	// Submit and closes when the job settles; queueSpan covers Submit until
	// a worker picks the job up. The worker goroutine closes both — safe,
	// because the queue handoff orders Submit's span opens before them.
	tree      *trace.Tree
	reqSpan   trace.Span
	queueSpan trace.Span

	// contentHash is the request's core.ContentHash, computed at Submit —
	// the cache key, the batching coalescing key and the router's routing
	// key are all this value.
	contentHash string

	// claimed is the settlement ownership CAS: exactly one of a worker, a
	// batch leader's wave, or Close wins it, and only the winner may run or
	// fail the job. It is what makes a job impossible to double-settle (or
	// hang) when batching, draining and submission race.
	claimed atomic.Bool

	// anytime, budget and deadline carry the job's resolved deadline
	// policy: budget is the time granted at Submit, deadline the absolute
	// soft target the pipeline splits into stage budgets. In anytime mode
	// job.ctx carries only a far hard cap — the soft deadline governs
	// quality, genuine cancellation (client gone, shutdown) still aborts.
	anytime  bool
	budget   time.Duration
	deadline time.Time

	// Execution annotations for the access log and flight recorder, written
	// and read only on the goroutine that claimed the job.
	device      string
	cacheLabel  string // "hit" | "miss" | "" (failed before the lookup)
	solver      string // effective Step-3 matcher, for the assign histogram
	quarantined bool
	partial     bool // settled with a deadline-budgeted partial result
	batched     bool // settled as a follower in a batch wave
	batchWave   int  // wave width (leader included), 0 when unbatched

	mu     sync.Mutex
	state  JobState
	result *JobResult
	err    error
	done   chan struct{}
}

// Done returns a channel closed when the job finishes (done or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the job: dequeued-but-unstarted jobs fail immediately,
// running jobs observe the cancellation at the next pipeline checkpoint.
func (j *Job) Cancel() { j.cancel() }

// Snapshot returns the job's current state, result and error.
func (j *Job) Snapshot() (JobState, *JobResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.err
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

func (j *Job) finish(res *JobResult, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = JobFailed
		j.err = err
	} else {
		j.state = JobDone
		j.result = res
	}
	j.mu.Unlock()
	j.cancel() // release the deadline timer
	close(j.done)
}

// Service is the running serving layer. Construct with New; stop with
// Drain (graceful) and/or Close (immediate).
type Service struct {
	cfg     Config
	reg     *telemetry.Registry
	devices *DevicePool
	cache   *prepCache

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	queue    chan *Job
	draining bool
	jobs     map[string]*Job
	order    []string // job IDs in creation order, for retention
	// pending indexes queued-and-unclaimed jobs by content hash — the batch
	// leader's shopping list. A job leaves pending when claimed (by its
	// worker, a wave, or Close).
	pending map[string][]*Job
	seq     atomic.Int64
	wg      sync.WaitGroup
	ready   atomic.Bool

	recorder  *flightRecorder
	estimator *phaseEstimator
	logMu     sync.Mutex

	inFlight    *telemetry.Gauge
	batchWaves  *telemetry.Counter
	batchedJobs *telemetry.Counter
	batchSize   *telemetry.Histogram
	jobsTotal   func(outcome string) *telemetry.Counter
	latency     *telemetry.Histogram
	queueWait   *telemetry.Histogram
	queueWaitNS *telemetry.Histogram
	phaseNS     func(phase string) *telemetry.Histogram
	assignNS    func(solver string) *telemetry.Histogram
	rejected    func(reason string) *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter

	partialResponses  *telemetry.Counter
	admissionRejected func(reason string) *telemetry.Counter
	budgetRemaining   func(stage string) *telemetry.Gauge
}

// New starts a service: the device pool, the worker pool and the metrics
// are live when it returns, and readiness reports true.
func New(cfg Config) *Service {
	cfg.applyDefaults()
	s := &Service{
		cfg: cfg,
		reg: cfg.Registry,
		devices: NewDevicePoolConfig(PoolConfig{
			Devices:          cfg.Devices,
			WorkersPer:       cfg.DeviceWorkers,
			Faults:           cfg.DeviceFaults,
			FailureThreshold: cfg.FailureThreshold,
			ProbeInterval:    cfg.ProbeInterval,
			Registry:         cfg.Registry,
		}),
		cache:    newPrepCache(cfg.CacheBytes),
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[string]*Job),
		pending:  make(map[string][]*Job),
		recorder:  newFlightRecorder(cfg.RecorderSlow, cfg.RecorderErrors),
		estimator: newPhaseEstimator(cfg.AdmissionMinSamples),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.registerMetrics()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.ready.Store(true)
	return s
}

func (s *Service) registerMetrics() {
	reg := s.reg
	reg.GaugeFunc("mosaic_service_queue_depth", "Jobs waiting for a worker.", nil,
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("mosaic_service_queue_capacity", "Bound of the job queue.", nil,
		func() float64 { return float64(cap(s.queue)) })
	reg.GaugeFunc("mosaic_service_devices", "Devices in the pool.", nil,
		func() float64 { return float64(s.devices.Size()) })
	reg.GaugeFunc("mosaic_service_devices_idle", "Pool devices not leased to a job.", nil,
		func() float64 { return float64(s.devices.Idle()) })
	reg.GaugeFunc("mosaic_service_devices_quarantined", "Pool devices currently quarantined.", nil,
		func() float64 { return float64(s.devices.Quarantined()) })
	reg.GaugeFunc("mosaic_service_ready", "1 while accepting jobs, 0 during drain.", nil,
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("mosaic_service_cache_entries", "Prepared inputs resident in the cache.", nil,
		func() float64 { e, _, _ := s.cache.stats(); return float64(e) })
	reg.GaugeFunc("mosaic_service_cache_bytes", "Bytes resident in the prepared-work cache.", nil,
		func() float64 { _, b, _ := s.cache.stats(); return float64(b) })
	reg.CounterFunc("mosaic_service_cache_evictions_total", "Prepared inputs evicted by the byte budget.", nil,
		func() float64 { _, _, ev := s.cache.stats(); return float64(ev) })
	s.inFlight = reg.Gauge("mosaic_service_jobs_in_flight", "Jobs currently executing.", nil)
	s.batchWaves = reg.Counter("mosaic_service_batch_waves_total",
		"Finish waves that coalesced two or more same-content jobs onto one device lease.", nil)
	s.batchedJobs = reg.Counter("mosaic_service_batched_jobs_total",
		"Follower jobs settled inside a batch leader's Finish wave (device acquire and cache lookup skipped).", nil)
	s.batchSize = reg.Histogram("mosaic_service_batch_size",
		"Jobs per coalesced Finish wave, leader included.", nil, telemetry.SizeBuckets)
	s.latency = reg.Histogram("mosaic_service_job_latency_seconds",
		"Job wall time from submit to finish, in seconds.", nil, nil)
	s.queueWait = reg.Histogram("mosaic_service_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up, in seconds.", nil, nil)
	s.queueWaitNS = reg.Histogram("mosaic_service_queue_wait_ns",
		"Time jobs spent queued before a worker picked them up, in nanoseconds (with request-ID exemplars).",
		nil, telemetry.NanoBuckets)
	s.phaseNS = func(phase string) *telemetry.Histogram {
		return reg.Histogram("mosaic_request_phase_ns",
			"Request wall time attributed exclusively to each phase, in nanoseconds (with request-ID exemplars).",
			telemetry.Labels{"phase": phase}, telemetry.NanoBuckets)
	}
	s.assignNS = func(solver string) *telemetry.Histogram {
		return reg.Histogram("mosaic_assign_ns",
			"Step-3 exact-matching wall time by solver, in nanoseconds (with request-ID exemplars).",
			telemetry.Labels{"solver": solver}, telemetry.NanoBuckets)
	}
	s.jobsTotal = func(outcome string) *telemetry.Counter {
		return reg.Counter("mosaic_service_jobs_total", "Finished jobs by outcome.",
			telemetry.Labels{"outcome": outcome})
	}
	s.rejected = func(reason string) *telemetry.Counter {
		return reg.Counter("mosaic_service_rejected_total", "Jobs rejected at submission.",
			telemetry.Labels{"reason": reason})
	}
	s.cacheHits = reg.Counter("mosaic_service_cache_hits_total",
		"Jobs that reused a cached prepared input and skipped Step 2.", nil)
	s.cacheMisses = reg.Counter("mosaic_service_cache_misses_total",
		"Jobs that built their prepared input (Step 2 executed).", nil)
	s.partialResponses = reg.Counter("mosaic_partial_responses_total",
		"Anytime jobs settled with a deadline-budgeted partial result.", nil)
	s.admissionRejected = func(reason string) *telemetry.Counter {
		return reg.Counter("mosaic_admission_rejections_total",
			"Submissions rejected by predictive admission control, by reason.",
			telemetry.Labels{"reason": reason})
	}
	s.budgetRemaining = func(stage string) *telemetry.Gauge {
		return reg.Gauge("mosaic_budget_remaining_ns",
			"Deadline budget remaining at stage entry for the most recent anytime job, in nanoseconds (negative once overdrawn).",
			telemetry.Labels{"stage": stage})
	}
	reg.GaugeFunc("mosaic_estimated_job_ns",
		"Admission control's EWMA whole-job latency estimate, in nanoseconds (0 until a job has settled).", nil,
		func() float64 {
			m, ok := s.estimator.jobMean()
			if !ok {
				return 0
			}
			return float64(m.Nanoseconds())
		})
}

// Ready implements the telemetry.WithReadiness check. Besides draining, the
// service reports not-ready when every device is quarantined *and* CPU
// fallback is disabled — with fallback enabled a device-less service still
// serves correct (degraded) responses, so it stays ready.
func (s *Service) Ready() (bool, string) {
	if !s.ready.Load() {
		return false, "draining"
	}
	if s.cfg.NoCPUFallback && s.devices.AllQuarantined() {
		return false, "all devices quarantined and CPU fallback disabled"
	}
	return true, ""
}

// Registry returns the metrics registry the service reports into.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Submit validates and enqueues a job. It never blocks: a full queue
// returns ErrQueueFull (the backpressure signal) and a draining service
// ErrDraining. The job's deadline starts now, so time spent queued counts
// against it. Strict (non-anytime) jobs also pass predictive admission
// control: when the latency estimator predicts the job cannot finish
// inside its deadline, Submit rejects with ErrDeadlineUnmeetable instead
// of queueing work that is guaranteed to time out; anytime jobs are always
// admitted and degrade to a partial result instead.
func (s *Service) Submit(req *Request) (*Job, error) {
	if req != nil {
		// The effective ID is written back so even rejected submissions can
		// be correlated (the HTTP layer echoes it on the 429/503 response).
		req.RequestID = trace.SanitizeRequestID(req.RequestID)
		if req.RequestID == "" {
			req.RequestID = trace.NewRequestID()
		}
	}
	if err := validateRequest(req); err != nil {
		return nil, err
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	anytime := s.cfg.Anytime
	if req.Anytime != nil {
		anytime = *req.Anytime
	}
	if !req.Deadline.IsZero() {
		// The propagated client deadline caps whatever the body asked for —
		// the client stops waiting at Deadline no matter what.
		if rem := time.Until(req.Deadline); rem < timeout {
			timeout = rem
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected("draining").Inc()
		s.logRejection(req, "rejected_draining")
		return nil, ErrDraining
	}
	if !anytime {
		if timeout <= 0 {
			s.rejected("deadline").Inc()
			s.admissionRejected("expired").Inc()
			s.logRejection(req, "rejected_deadline")
			return nil, fmt.Errorf("%w: deadline already expired", ErrDeadlineUnmeetable)
		}
		if !s.cfg.NoAdmission {
			if est, ok := s.estimator.estimate(len(s.queue), s.cfg.Workers); ok && est > timeout {
				s.rejected("deadline").Inc()
				s.admissionRejected("unmeetable").Inc()
				s.logRejection(req, "rejected_deadline")
				return nil, fmt.Errorf("%w: estimated %v for a %v deadline",
					ErrDeadlineUnmeetable, est.Round(time.Millisecond), timeout.Round(time.Millisecond))
			}
		}
	}
	if timeout < 0 {
		timeout = 0 // expired anytime deadline: admit for the quality floor
	}
	job := &Job{
		ID:          fmt.Sprintf("j%06d", s.seq.Add(1)),
		RequestID:   req.RequestID,
		Route:       req.Route,
		Created:     time.Now(),
		req:         req,
		contentHash: req.ContentKey(),
		state:       JobQueued,
		done:        make(chan struct{}),
		tree:        trace.NewTree(),
		anytime:     anytime,
		budget:      timeout,
		deadline:    time.Now().Add(timeout),
	}
	if anytime {
		// The soft deadline (job.deadline) governs quality via the stage
		// budgets; the ctx carries only a far hard cap so a pathological
		// job still terminates. MaxTimeout bounds any admissible job's
		// unskippable stages (prepare + assembly + encode).
		job.ctx, job.cancel = context.WithTimeout(s.baseCtx, timeout+s.cfg.MaxTimeout)
	} else {
		job.ctx, job.cancel = context.WithTimeout(s.baseCtx, timeout)
	}
	job.ctx = trace.WithRequestID(job.ctx, job.RequestID)
	job.reqSpan = job.tree.StartSpan(trace.SpanRequest)
	trace.Annotate(job.reqSpan, trace.AttrRequestID, job.RequestID)
	job.queueSpan = job.tree.StartSpan(trace.SpanQueueWait)
	select {
	case s.queue <- job:
	default:
		s.rejected("queue-full").Inc()
		s.logRejection(req, "rejected_queue_full")
		job.cancel()
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if !s.cfg.NoBatching {
		s.pending[job.contentHash] = append(s.pending[job.contentHash], job)
	}
	s.retainLocked()
	return job, nil
}

// retainLocked drops the oldest finished jobs beyond the retention bound so
// the job map cannot grow without limit under async traffic.
func (s *Service) retainLocked() {
	for len(s.jobs) > s.cfg.JobsRetain {
		dropped := false
		for i, id := range s.order {
			j, ok := s.jobs[id]
			if !ok {
				s.order = append(s.order[:i], s.order[i+1:]...)
				dropped = true
				break
			}
			st, _, _ := j.Snapshot()
			if st == JobDone || st == JobFailed {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return // everything retained is still queued or running
		}
	}
}

// Job returns the job with the given ID, if still retained.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// RetryAfter returns the configured 429 Retry-After hint.
func (s *Service) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// RetryAfterEstimate computes the Retry-After hint for 429 responses from
// live state — current queue depth × the latency estimator's mean job time,
// clamped to [1s, 30s] — so a client backing off under overload waits
// roughly one queue-drain instead of a fixed constant. Before the first job
// has settled it falls back to the configured constant.
func (s *Service) RetryAfterEstimate() time.Duration {
	mean, ok := s.estimator.jobMean()
	if !ok {
		return s.cfg.RetryAfter
	}
	ra := time.Duration(len(s.queue)) * mean
	if ra < time.Second {
		ra = time.Second
	}
	if ra > 30*time.Second {
		ra = 30 * time.Second
	}
	return ra
}

func validateRequest(req *Request) error {
	if req == nil || req.Input == nil || req.Target == nil {
		return fmt.Errorf("%w: missing images", core.ErrOptions)
	}
	if req.Tiles < 2 {
		return fmt.Errorf("%w: tiles %d (need at least 2 per side)", core.ErrOptions, req.Tiles)
	}
	if req.Solver != "" {
		if _, ok := assign.Solvers()[req.Solver]; !ok {
			return fmt.Errorf("%w: unknown solver %q", core.ErrOptions, req.Solver)
		}
	}
	return nil
}

func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		// The claim CAS is the settlement handoff: a job a batch wave (or
		// Close) already owns stays in the channel but must not run twice.
		if !job.claimed.CompareAndSwap(false, true) {
			continue
		}
		s.unpend(job)
		s.run(job)
	}
}

// unpend removes a claimed job from the batching index.
func (s *Service) unpend(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.pending[job.contentHash]
	for i, j := range list {
		if j == job {
			s.pending[job.contentHash] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(s.pending[job.contentHash]) == 0 {
		delete(s.pending, job.contentHash)
	}
}

// run executes one claimed job: lease a device, reuse or build the prepared
// input, finish the pipeline, encode the result — then settles the request's
// observability artifacts (span tree, phase histograms, access log, flight
// recorder) before waking any waiter, so a synchronous client's immediate
// /debug/requests follow-up finds its own entry. After settling its own job
// the worker, still holding the device lease, claims every queued job that
// shares the same prepared work and settles them as one Finish wave — the
// micro-batching that amortizes acquire/launch overhead across same-content
// bursts.
func (s *Service) run(job *Job) {
	s.beginJob(job)
	s.inFlight.Inc()
	defer s.inFlight.Dec()
	if s.cfg.testJobStart != nil {
		s.cfg.testJobStart(job)
	}

	l, err := s.acquireLease(job)
	if err != nil {
		s.settleJob(job, nil, err)
		return
	}
	res, prep, err := s.execute(job, l)
	s.reportDevice(job, l)
	s.settleJob(job, res, err)
	if prep != nil && !s.cfg.NoBatching {
		s.finishWave(job, prep, l)
	}
	s.releaseLease(l)
}

// beginJob closes the queue-wait span and flips the job to running — the
// common entry for worker-run jobs and wave followers alike.
func (s *Service) beginJob(job *Job) {
	job.queueSpan.End()
	queueWait := time.Since(job.Created)
	s.queueWait.Observe(queueWait.Seconds())
	s.queueWaitNS.ObserveExemplar(float64(queueWait.Nanoseconds()),
		telemetry.Labels{"request_id": job.RequestID})
	job.setRunning()
}

// settleJob classifies the outcome, settles observability and wakes waiters.
// A deadline miss, a client cancellation and a genuine execution error are
// different operational signals and get separate outcome counters (the HTTP
// layer mirrors the split as 504 / 499 / 5xx).
func (s *Service) settleJob(job *Job, res *JobResult, err error) {
	elapsed := time.Since(job.Created)
	s.latency.Observe(elapsed.Seconds())
	outcome := "done"
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			outcome = "timeout"
		case errors.Is(err, context.Canceled):
			outcome = "cancelled"
		default:
			outcome = "error"
		}
	}
	if err == nil && res != nil && res.Partial {
		s.partialResponses.Inc()
	}
	s.jobsTotal(outcome).Inc()
	s.settleTrace(job, outcome, err)
	if err != nil {
		job.finish(nil, err)
		return
	}
	res.Elapsed = elapsed
	res.Stats = job.tree.Snapshot()
	job.finish(res, nil)
}

// settleTrace closes the request root span, attributes the request's wall
// time to phases, feeds the phase histograms (with request-ID exemplars),
// writes the access-log line and hands the span tree to the flight recorder.
func (s *Service) settleTrace(job *Job, outcome string, jobErr error) {
	st := job.tree.Snapshot()
	retries := st.Counter(trace.CounterLaunchRetries)
	degraded := st.Counter(trace.CounterDegradedRuns) > 0
	trace.Annotate(job.reqSpan, trace.AttrOutcome, outcome)
	if job.device != "" {
		trace.Annotate(job.reqSpan, trace.AttrDevice, job.device)
	}
	if degraded {
		trace.Annotate(job.reqSpan, trace.AttrDegraded, "true")
	}
	if job.quarantined {
		trace.Annotate(job.reqSpan, trace.AttrQuarantine, "true")
	}
	if retries > 0 {
		trace.Annotate(job.reqSpan, trace.AttrRetries, fmt.Sprintf("%d", retries))
	}
	if job.batched {
		trace.Annotate(job.reqSpan, trace.AttrBatched, "true")
	}
	if job.batchWave > 1 {
		trace.Annotate(job.reqSpan, trace.AttrBatchSize, fmt.Sprintf("%d", job.batchWave))
	}
	if job.partial {
		trace.Annotate(job.reqSpan, trace.AttrPartial, "true")
	}
	job.reqSpan.End()

	roots := job.tree.Roots()
	phases := trace.Phases(roots)
	exLabels := telemetry.Labels{"request_id": job.RequestID}
	for phase, ns := range phases {
		s.phaseNS(phase).ObserveExemplar(float64(ns), exLabels)
	}
	// Per-solver matching latency: only requests that ran the optimization
	// algorithm open a SpanAssign, so the histogram stays solver-pure.
	if ns, ok := phases[trace.SpanAssign]; ok && job.solver != "" {
		s.assignNS(job.solver).ObserveExemplar(float64(ns), exLabels)
	}
	var total int64
	for _, r := range roots {
		total += int64(r.Duration)
	}
	if outcome == "done" && !job.partial {
		// Complete successes train the admission estimator; failures and
		// partials stopped early and would bias the mean toward optimism
		// exactly when the service is overloaded.
		s.estimator.observe(phases, total)
	}

	rec := &RecordedRequest{
		RequestID:   job.RequestID,
		JobID:       job.ID,
		Route:       job.Route,
		Outcome:     outcome,
		Start:       job.Created,
		DurationNS:  total,
		Device:      job.device,
		Cache:       job.cacheLabel,
		ContentHash: job.contentHash,
		Degraded:    degraded,
		Quarantined: job.quarantined,
		Retries:     retries,
		Batched:     job.batched,
		Partial:     job.partial,
		BudgetNS:    job.budget.Nanoseconds(),
		Phases:      phases,
		Spans:       roots,
	}
	if jobErr != nil {
		rec.Error = jobErr.Error()
	}
	s.recorder.record(rec)
	s.logAccess(accessLine{
		TimeRFC3339: time.Now().UTC().Format(time.RFC3339Nano),
		RequestID:   job.RequestID,
		JobID:       job.ID,
		Route:       job.Route,
		Outcome:     outcome,
		Error:       rec.Error,
		DurationNS:  total,
		PhasesNS:    phases,
		Device:      job.device,
		Cache:       rec.Cache,
		ContentHash: job.contentHash,
		Degraded:    degraded,
		Quarantined: job.quarantined,
		Retries:     retries,
		Batched:     job.batched,
		Partial:     job.partial,
		BudgetNS:    job.budget.Nanoseconds(),
	})
}

// execute runs one job's pipeline under an already-acquired lease: reuse or
// build the prepared input, finish, encode. The Prepared is returned (even
// when the Finish itself failed) so run can coalesce queued same-content
// jobs into a wave on the same lease.
func (s *Service) execute(job *Job, l *lease) (*JobResult, *core.Prepared, error) {
	ctx := job.ctx
	req := job.req

	// The job's request-scoped tree (opened at Submit) receives every span;
	// the shared registry, which aggregates stage histograms across jobs,
	// sees only the pipeline's events — service-journey spans (device-wait,
	// cache-lookup, encode) go on the tree alone so the exported stage
	// vocabulary stays stable.
	tree := job.tree
	tr := trace.Multi(tree, telemetry.NewTraceCollector(s.reg))
	if l.host() {
		// Every device is sick: run the whole job on the host. The CPU
		// builders and the host Algorithm-2 sweeps are certified
		// bit-identical, so only latency degrades, and the run is counted.
		trace.Count(tr, trace.CounterDegradedRuns, 1)
	}
	opts := s.jobOptions(job, l, tr)

	key := job.contentHash
	lookupSpan := tree.StartSpan(trace.SpanCacheLookup)
	prep, hit, err := s.cache.getOrPrepare(ctx, key, func() (*core.Prepared, error) {
		// The leader builds on this goroutine, so the prepare stage spans
		// nest inside the cache-lookup span and its exclusive time stays
		// pure lookup overhead.
		return core.PrepareContext(ctx, req.Input, req.Target, opts)
	})
	lookupSpan.End()
	if err != nil {
		return nil, nil, err
	}
	job.cacheLabel = cacheLabel(hit)
	trace.Annotate(job.reqSpan, trace.AttrCache, job.cacheLabel)
	if hit {
		s.cacheHits.Inc()
	} else {
		s.cacheMisses.Inc()
	}

	res, err := s.finishAndEncode(job, prep, opts)
	if err != nil {
		return nil, prep, err
	}
	res.CacheHit = hit
	return res, prep, nil
}

// jobOptions assembles the pipeline options for one job on one lease.
func (s *Service) jobOptions(job *Job, l *lease, tr trace.Collector) core.Options {
	req := job.req
	solver := req.Solver
	if solver == "" {
		solver = s.cfg.DefaultSolver
	}
	if solver == "" {
		solver = assign.AlgoJV
	}
	job.solver = string(solver)
	return core.Options{
		TilesPerSide:     req.Tiles,
		Algorithm:        req.Algorithm,
		Metric:           req.Metric,
		NoHistogramMatch: req.NoHistMatch,
		Solver:           solver,
		Device:           l.dev,
		Trace:            tr,
		Resilience:       &core.Resilience{Retry: s.cfg.Retry, DisableFallback: s.cfg.NoCPUFallback},
		Anytime:          job.anytime,
		Deadline:         job.deadline,
	}
}

// finishAndEncode runs Step 3 + assembly on the shared Prepared and encodes
// the mosaic. The result reports the job-level tree, not res.Stats: the job
// tree saw this job's prepare spans too (when it was the cache-miss
// builder), so the span list is the observable hit/miss signature —
// error-matrix present only when Step 2 actually ran for this request.
// settleJob refreshes Stats once the request root closes.
func (s *Service) finishAndEncode(job *Job, prep *core.Prepared, opts core.Options) (*JobResult, error) {
	res, err := prep.FinishContext(job.ctx, opts)
	if err != nil {
		return nil, err
	}
	for stage, ns := range res.BudgetRemaining {
		s.budgetRemaining(stage).Set(float64(ns))
	}
	encSpan := job.tree.StartSpan(trace.SpanEncode)
	var buf bytes.Buffer
	if err := png.Encode(&buf, res.Mosaic.ToImage()); err != nil {
		encSpan.End()
		return nil, fmt.Errorf("service: encode: %w", err)
	}
	encSpan.End()
	if job.anytime {
		s.budgetRemaining("encode").Set(float64(time.Until(job.deadline).Nanoseconds()))
	}
	job.partial = res.Partial
	jr := &JobResult{
		PNG:        buf.Bytes(),
		TotalError: res.TotalError,
		Stats:      job.tree.Snapshot(),
		Partial:    res.Partial,
	}
	if res.AssignInfo != nil {
		jr.CertifiedGap = res.AssignInfo.Gap
	}
	return jr, nil
}

// accessLine is one structured access-log record; all durations nanoseconds.
type accessLine struct {
	TimeRFC3339 string           `json:"ts"`
	RequestID   string           `json:"request_id"`
	JobID       string           `json:"job_id,omitempty"`
	Route       string           `json:"route,omitempty"`
	Outcome     string           `json:"outcome"`
	Error       string           `json:"error,omitempty"`
	DurationNS  int64            `json:"duration_ns"`
	PhasesNS    map[string]int64 `json:"phases_ns,omitempty"`
	Device      string           `json:"device,omitempty"`
	Cache       string           `json:"cache,omitempty"`
	ContentHash string           `json:"content_hash,omitempty"`
	Degraded    bool             `json:"degraded,omitempty"`
	Quarantined bool             `json:"quarantined,omitempty"`
	Retries     int64            `json:"retries,omitempty"`
	Batched     bool             `json:"batched,omitempty"`
	Partial     bool             `json:"partial,omitempty"`
	BudgetNS    int64            `json:"budget_ns,omitempty"`
}

// logAccess writes one JSON line; writers are worker goroutines plus Submit
// rejections, so the write is serialised.
func (s *Service) logAccess(line accessLine) {
	if s.cfg.AccessLog == nil {
		return
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.logMu.Lock()
	_, _ = s.cfg.AccessLog.Write(b)
	s.logMu.Unlock()
}

// logRejection access-logs a submission that never became a job — the
// backpressure events an operator most wants correlated with client retries.
func (s *Service) logRejection(req *Request, outcome string) {
	s.logAccess(accessLine{
		TimeRFC3339: time.Now().UTC().Format(time.RFC3339Nano),
		RequestID:   req.RequestID,
		Route:       req.Route,
		Outcome:     outcome,
	})
}

// Drain stops accepting jobs, flips readiness, and waits for queued and
// in-flight jobs to finish — the SIGTERM path. It returns ctx's error if
// the deadline expires first (in-flight jobs keep their own deadlines; a
// following Close cancels them hard). Drain is idempotent; concurrent calls
// all wait.
func (s *Service) Drain(ctx context.Context) error {
	s.ready.Store(false)
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // workers exit once the queue empties
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.devices.Close()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// Close cancels every job context and waits for the workers. Safe after
// Drain; used alone it is the hard-stop path.
func (s *Service) Close() {
	s.ready.Store(false)
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
	s.devices.Close()
	// Jobs cancelled while still queued never reach a worker; fail them so
	// waiters do not block forever. The claim CAS keeps this race-free: only
	// the winner settles, so a job a worker or wave is settling concurrently
	// is skipped here, and a job claimed here can no longer be run by anyone.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		st, _, _ := j.Snapshot()
		if st == JobQueued && j.claimed.CompareAndSwap(false, true) {
			j.finish(nil, context.Canceled)
		}
	}
	s.pending = make(map[string][]*Job)
}
