package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestJSONBodyTooLarge: an oversized JSON body must be rejected with 413,
// not silently truncated at the read limit (the old io.LimitReader path fed
// a cut-off body into the JSON decoder — corrupt input masquerading as a
// client error, or worse, a shorter valid prefix parsing as a different
// request).
func TestJSONBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Valid JSON framing with limit-exceeding padding, so only the size —
	// never a parse error — can explain the rejection.
	body := `{"input":"lena","target":"sailboat","size":64,"tiles":8,"mode":"` +
		strings.Repeat("x", maxUploadBytes) + `"}`
	resp, err := http.Post(ts.URL+"/v1/mosaic", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized JSON body: status %d, want 413", resp.StatusCode)
	}

	// An at-limit body must still be accepted (or fail for its content, not
	// its size): the limit is a bound, not an off-by-one trap.
	small := `{"input":"lena","target":"sailboat","size":64,"tiles":8}`
	resp2, jr := postJSON(t, ts.URL, small)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("normal request after limit test: %d (%s)", resp2.StatusCode, jr.Error)
	}
}

// TestMultipartUploadTooLarge: an oversized multipart upload must be
// rejected with 413. Before the fix the file part was silently truncated at
// the limit, yielding a corrupt image — or a wrong content hash poisoning
// the prepared-work cache.
func TestMultipartUploadTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var body bytes.Buffer
	mw := newMultipart(t, &body, map[string]string{"size": "64", "tiles": "8"}, map[string][]byte{
		// Not a decodable PNG, but the size gate must fire before decoding.
		"input":  bytes.Repeat([]byte{0xAB}, maxUploadBytes+1),
		"target": []byte("P2 1 1 255 0"),
	})
	resp, err := http.Post(ts.URL+"/v1/mosaic", mw, &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized multipart upload: status %d, want 413", resp.StatusCode)
	}
}

// TestFormFileLimitCheck pins the defense-in-depth per-file check directly:
// formFile must error on a part exceeding the limit rather than truncate.
func TestFormFileLimitCheck(t *testing.T) {
	var body bytes.Buffer
	ctype := newMultipart(t, &body, nil, map[string][]byte{
		"input": bytes.Repeat([]byte{0x01}, maxUploadBytes+1),
	})
	r := httptest.NewRequest(http.MethodPost, "/v1/mosaic", &body)
	r.Header.Set("Content-Type", ctype)
	// Spool the form without the whole-body bound so only the per-file
	// check can fire.
	if err := r.ParseMultipartForm(32 << 20); err != nil {
		t.Fatalf("ParseMultipartForm: %v", err)
	}
	if _, err := formFile(r, "input"); err == nil {
		t.Fatal("formFile accepted (and would have truncated) an oversized part")
	}
}

// TestPreparedPeek: HEAD /v1/prepared/{hash} answers 404 before a job
// prepares that content and 200 after — the router's cross-node cache probe.
func TestPreparedPeek(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	req := &Request{
		Input:  mustScene(t, "lena", 64),
		Target: mustScene(t, "sailboat", 64),
		Tiles:  8,
	}
	hash := req.ContentKey()

	head := func() int {
		t.Helper()
		resp, err := http.Head(ts.URL + "/v1/prepared/" + hash)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := head(); got != http.StatusNotFound {
		t.Fatalf("peek before prepare: %d, want 404", got)
	}
	resp, jr := postJSON(t, ts.URL, `{"input":"lena","target":"sailboat","size":64,"tiles":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare request: %d (%s)", resp.StatusCode, jr.Error)
	}
	if got := head(); got != http.StatusOK {
		t.Fatalf("peek after prepare: %d, want 200", got)
	}
	if !svc.PreparedCached(hash) {
		t.Fatal("PreparedCached disagrees with the HTTP peek")
	}
	// Peeking an unknown hash stays 404.
	r2, err := http.Head(ts.URL + "/v1/prepared/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("peek of unknown hash: %d, want 404", r2.StatusCode)
	}
}
