package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDevicePoolSerializes: with one device, concurrent acquirers never
// overlap — the launch-guard invariant the pool exists to uphold.
func TestDevicePoolSerializes(t *testing.T) {
	p := NewDevicePool(1, 2)
	var holders, maxHolders int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := p.Acquire(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			if h := atomic.AddInt32(&holders, 1); h > atomic.LoadInt32(&maxHolders) {
				atomic.StoreInt32(&maxHolders, h)
			}
			d.LaunchRange(64, func(i int) {})
			atomic.AddInt32(&holders, -1)
			p.Release(d)
		}()
	}
	wg.Wait()
	if maxHolders != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxHolders)
	}
	if p.Idle() != 1 {
		t.Fatalf("Idle() = %d after all releases, want 1", p.Idle())
	}
}

// TestDevicePoolRoundRobin: with two devices, two acquirers can hold
// distinct devices at once.
func TestDevicePoolRoundRobin(t *testing.T) {
	p := NewDevicePool(2, 1)
	if p.Size() != 2 {
		t.Fatalf("Size() = %d, want 2", p.Size())
	}
	ctx := context.Background()
	a, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool handed out the same device twice")
	}
	if p.Idle() != 0 {
		t.Fatalf("Idle() = %d with both held, want 0", p.Idle())
	}
	p.Release(a)
	p.Release(b)
}

// TestDevicePoolAcquireCancellation: a blocked Acquire honours context
// cancellation without leaking the device.
func TestDevicePoolAcquireCancellation(t *testing.T) {
	p := NewDevicePool(1, 1)
	d, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Acquire = %v, want DeadlineExceeded", err)
	}
	p.Release(d)
	// The device is back and immediately usable.
	d2, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.Release(d2)
}
