package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/retry"
)

// The chaos battery: fault injectors installed on pool devices, the retry /
// degrade / quarantine machinery exercised end to end over HTTP, and every
// response checked bit-identical against a healthy serial run. Run under
// -race in CI (make chaos-smoke).

// chaosRetry is an aggressive schedule so storms resolve in test time.
func chaosRetry() retry.Policy {
	return retry.Policy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

// healthyReference runs the approximation-parallel pipeline serially on a
// private, fault-free device — the bit-identity oracle for chaos runs.
func healthyReference(t *testing.T, input, target string, size, tiles int) *core.Result {
	t.Helper()
	res, err := core.Generate(mustScene(t, input, size), mustScene(t, target, size), core.Options{
		TilesPerSide: tiles,
		Algorithm:    core.ParallelApproximation,
		Device:       cuda.New(2),
	})
	if err != nil {
		t.Fatalf("healthy reference: %v", err)
	}
	return res
}

// postParallelJob submits one approximation-parallel job and returns the
// decoded response; fails the test on any non-200.
func postParallelJob(t *testing.T, url, input, target string, size, tiles int) jobResponseJSON {
	t.Helper()
	body := fmt.Sprintf(`{"input":%q,"target":%q,"size":%d,"tiles":%d,"algorithm":"approximation-parallel"}`,
		input, target, size, tiles)
	resp, jr := postJSON(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job %s/%s: status %d (%s)", input, target, resp.StatusCode, jr.Error)
	}
	return jr
}

// assertIdentical checks a chaos response against the healthy oracle: same
// Eq. (2) total error and the same mosaic, pixel for pixel.
func assertIdentical(t *testing.T, jr jobResponseJSON, want *core.Result, label string) {
	t.Helper()
	if jr.TotalError != want.TotalError {
		t.Errorf("%s: total_error = %d, want %d", label, jr.TotalError, want.TotalError)
	}
	got := decodeBase64PNG(t, jr.PNGBase64)
	if !bytes.Equal(got.Pix, want.Mosaic.Pix) {
		t.Errorf("%s: mosaic differs from healthy reference", label)
	}
}

// metricValue scrapes /metrics and sums the named series across label sets;
// a series the registry has not created yet reads as 0.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	var sum float64
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '{') {
			continue // a longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// TestChaosEveryOtherLaunch fails every second kernel launch on the pool's
// only device. The per-launch retry policy must absorb the storm — responses
// stay bit-identical, faults and retries are counted, and nothing degrades
// to the host or trips the circuit breaker.
func TestChaosEveryOtherLaunch(t *testing.T) {
	const size, tiles = 64, 8
	want := healthyReference(t, "lena", "gradient", size, tiles)

	svc, ts := newTestServer(t, Config{
		Workers: 2, Devices: 1, DeviceWorkers: 2,
		Retry: chaosRetry(),
		DeviceFaults: func(i int) cuda.FaultInjector {
			return &cuda.FaultPlan{EveryNth: 2}
		},
	})
	for i := 0; i < 4; i++ {
		jr := postParallelJob(t, ts.URL, "lena", "gradient", size, tiles)
		assertIdentical(t, jr, want, fmt.Sprintf("storm job %d", i))
		for _, sp := range jr.Spans {
			if sp == "degraded-fallback" {
				t.Errorf("storm job %d: degraded to host; retries should have absorbed the faults", i)
			}
		}
	}
	if v := metricValue(t, ts.URL, "mosaic_cuda_launch_faults_total"); v == 0 {
		t.Error("mosaic_cuda_launch_faults_total = 0, want > 0 under an every-other-launch storm")
	}
	if v := metricValue(t, ts.URL, "mosaic_cuda_launch_retries_total"); v == 0 {
		t.Error("mosaic_cuda_launch_retries_total = 0, want > 0")
	}
	if v := metricValue(t, ts.URL, "mosaic_degraded_runs_total"); v != 0 {
		t.Errorf("mosaic_degraded_runs_total = %v, want 0 (transient faults only)", v)
	}
	if q := svc.devices.Quarantined(); q != 0 {
		t.Errorf("quarantined = %d, want 0", q)
	}
}

// TestChaosOneDeadDeviceInPool permanently kills one device in a pool of
// four. The job that draws it degrades to the host (still bit-identical),
// the circuit breaker quarantines the corpse, and every later job runs on
// the surviving three.
func TestChaosOneDeadDeviceInPool(t *testing.T) {
	const size, tiles = 64, 8
	want := healthyReference(t, "lena", "gradient", size, tiles)

	svc, ts := newTestServer(t, Config{
		Workers: 1, Devices: 4, DeviceWorkers: 2,
		Retry: chaosRetry(),
		DeviceFaults: func(i int) cuda.FaultInjector {
			if i == 0 {
				return &cuda.FaultPlan{Err: cuda.ErrDeviceLost}
			}
			return nil
		},
	})
	for i := 0; i < 8; i++ {
		jr := postParallelJob(t, ts.URL, "lena", "gradient", size, tiles)
		assertIdentical(t, jr, want, fmt.Sprintf("job %d", i))
	}
	waitFor(t, func() bool { return svc.devices.Quarantined() == 1 },
		"dead device never quarantined")
	if v := metricValue(t, ts.URL, "mosaic_device_quarantined_total"); v != 1 {
		t.Errorf("mosaic_device_quarantined_total = %v, want 1", v)
	}
	if v := metricValue(t, ts.URL, "mosaic_degraded_runs_total"); v == 0 {
		t.Error("mosaic_degraded_runs_total = 0, want > 0 (the job that drew the dead device)")
	}
	// Three healthy devices left: the service must still report ready.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz = %d, want 200 with healthy devices remaining", resp.StatusCode)
	}
}

// TestChaosMidJobDeviceLoss loses the device partway through a job's sweep
// launches. The remaining color classes replay on the host and the response
// is still bit-identical.
func TestChaosMidJobDeviceLoss(t *testing.T) {
	const size, tiles = 64, 8
	want := healthyReference(t, "lena", "gradient", size, tiles)

	svc, ts := newTestServer(t, Config{
		Workers: 1, Devices: 1, DeviceWorkers: 2,
		Retry: chaosRetry(),
		DeviceFaults: func(i int) cuda.FaultInjector {
			// Launch 1 is the cost matrix; 5 lands inside the sweep classes.
			return &cuda.FaultPlan{Nth: []int64{5}, Err: cuda.ErrDeviceLost}
		},
	})
	jr := postParallelJob(t, ts.URL, "lena", "gradient", size, tiles)
	assertIdentical(t, jr, want, "mid-job loss")
	if v := metricValue(t, ts.URL, "mosaic_degraded_runs_total"); v == 0 {
		t.Error("mosaic_degraded_runs_total = 0, want > 0 after mid-job device loss")
	}
	waitFor(t, func() bool { return svc.devices.Quarantined() == 1 },
		"lost device never quarantined")
}

// TestChaosAllDeadNoFallback: with CPU fallback disabled and every device
// lost, jobs fail, /readyz flips to 503 and new work is refused with
// ErrAllQuarantined — the documented fail-closed posture.
func TestChaosAllDeadNoFallback(t *testing.T) {
	const size, tiles = 64, 8
	svc, ts := newTestServer(t, Config{
		Workers: 1, Devices: 2, DeviceWorkers: 2,
		Retry:         chaosRetry(),
		NoCPUFallback: true,
		DeviceFaults: func(i int) cuda.FaultInjector {
			return &cuda.FaultPlan{Err: cuda.ErrDeviceLost}
		},
	})
	body := fmt.Sprintf(`{"input":"lena","target":"gradient","size":%d,"tiles":%d,"algorithm":"approximation-parallel"}`,
		size, tiles)
	// Each failed job kills (and quarantines) the device it drew.
	for i := 0; i < 2; i++ {
		resp, jr := postJSON(t, ts.URL, body)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("job %d succeeded (%+v); fallback is disabled and the device is dead", i, jr)
		}
	}
	waitFor(t, svc.devices.AllQuarantined, "devices never all quarantined")

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d (%s), want 503", resp.StatusCode, msg)
	}
	if !strings.Contains(string(msg), "quarantined") {
		t.Errorf("/readyz body %q does not explain the quarantine", msg)
	}
	// A further job is refused outright with the quarantine error.
	resp2, jr := postJSON(t, ts.URL, body)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("job after total quarantine: status %d (%s), want 503", resp2.StatusCode, jr.Error)
	}
}

// TestChaosQuarantineRestore injects exactly one fatal fault: the first job
// degrades and the device is quarantined, the canary probe then finds it
// healthy and restores it, and the next job runs on the device with no new
// faults.
func TestChaosQuarantineRestore(t *testing.T) {
	const size, tiles = 64, 8
	want := healthyReference(t, "lena", "gradient", size, tiles)

	svc, ts := newTestServer(t, Config{
		Workers: 1, Devices: 1, DeviceWorkers: 2,
		Retry:         chaosRetry(),
		ProbeInterval: 5 * time.Millisecond,
		DeviceFaults: func(i int) cuda.FaultInjector {
			return &cuda.FaultPlan{Err: cuda.ErrDeviceLost, MaxFaults: 1}
		},
	})
	jr := postParallelJob(t, ts.URL, "lena", "gradient", size, tiles)
	assertIdentical(t, jr, want, "degraded job")
	waitFor(t, func() bool { return svc.devices.Quarantined() == 0 && svc.devices.Idle() == 1 },
		"device never restored by the canary probe")
	if v := metricValue(t, ts.URL, "mosaic_device_restored_total"); v != 1 {
		t.Errorf("mosaic_device_restored_total = %v, want 1", v)
	}

	faultsBefore := metricValue(t, ts.URL, "mosaic_cuda_launch_faults_total")
	jr2 := postParallelJob(t, ts.URL, "lena", "gradient", size, tiles)
	assertIdentical(t, jr2, want, "post-restore job")
	if after := metricValue(t, ts.URL, "mosaic_cuda_launch_faults_total"); after != faultsBefore {
		t.Errorf("launch faults advanced %v -> %v on the restored device", faultsBefore, after)
	}
	for _, sp := range jr2.Spans {
		if sp == "degraded-fallback" {
			t.Error("post-restore job degraded; the restored device should have served it")
		}
	}
}

// TestChaosHealthyBaseline: with no injectors installed, the whole fault
// machinery must be invisible — zero faults, zero retries, zero degraded
// runs, zero quarantines, responses bit-identical.
func TestChaosHealthyBaseline(t *testing.T) {
	const size, tiles = 64, 8
	want := healthyReference(t, "lena", "gradient", size, tiles)

	svc, ts := newTestServer(t, Config{
		Workers: 2, Devices: 2, DeviceWorkers: 2,
		Retry: chaosRetry(),
	})
	for i := 0; i < 3; i++ {
		jr := postParallelJob(t, ts.URL, "lena", "gradient", size, tiles)
		assertIdentical(t, jr, want, fmt.Sprintf("healthy job %d", i))
	}
	for _, name := range []string{
		"mosaic_cuda_launch_faults_total",
		"mosaic_cuda_launch_retries_total",
		"mosaic_degraded_runs_total",
		"mosaic_device_quarantined_total",
		"mosaic_device_faults_total",
	} {
		if v := metricValue(t, ts.URL, name); v != 0 {
			t.Errorf("%s = %v, want 0 on a healthy pool", name, v)
		}
	}
	if q := svc.devices.Quarantined(); q != 0 {
		t.Errorf("quarantined = %d, want 0", q)
	}
}
