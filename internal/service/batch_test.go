package service

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// TestBatchedFinishBitIdentical pins the micro-batching contract end to end:
// a burst of same-content jobs coalesces into one Finish wave (leader runs
// the full pipeline, followers settle on its lease against its Prepared), the
// followers' span trees show the skipped work — no device-wait, no
// cache-lookup, no error-matrix — and every output is bit-identical to a
// service running with batching disabled.
func TestBatchedFinishBitIdentical(t *testing.T) {
	const size, tiles, followers = 64, 8, 4
	input := mustScene(t, "lena", size)
	target := mustScene(t, "gradient", size)
	submit := func(svc *Service) *Job {
		t.Helper()
		job, err := svc.Submit(&Request{Input: input, Target: target, Tiles: tiles})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		return job
	}
	wait := func(job *Job) *JobResult {
		t.Helper()
		<-job.Done()
		st, res, err := job.Snapshot()
		if err != nil || st != JobDone {
			t.Fatalf("job %s: state %s, err %v", job.ID, st, err)
		}
		return res
	}

	// Reference: batching disabled, the request runs the plain path.
	ref := New(Config{Workers: 1, NoBatching: true})
	refPNG := wait(submit(ref)).PNG
	ref.Close()

	// Batched run: one worker, gated so the whole burst queues behind the
	// leader before it starts executing.
	release := make(chan struct{})
	svc, ts := newTestServer(t, Config{
		Workers:      1,
		QueueDepth:   followers + 1,
		testJobStart: func(*Job) { <-release },
	})
	leader := submit(svc)
	var wave []*Job
	for i := 0; i < followers; i++ {
		wave = append(wave, submit(svc))
	}
	close(release)

	leadRes := wait(leader)
	if !bytes.Equal(leadRes.PNG, refPNG) {
		t.Fatal("leader output differs from the unbatched reference")
	}
	if leadRes.CacheHit {
		t.Fatal("leader reported a cache hit; it should have built the Prepared")
	}
	if c := leadRes.Stats.Span(trace.SpanCostMatrix).Count; c == 0 {
		t.Fatal("leader ran no error-matrix spans; Step 2 should execute once")
	}
	for i, job := range wave {
		res := wait(job)
		if !bytes.Equal(res.PNG, refPNG) {
			t.Fatalf("follower %d output differs from the unbatched reference", i)
		}
		if !res.CacheHit {
			t.Fatalf("follower %d did not report the shared Prepared as a hit", i)
		}
		// The whole point of the wave: followers never wait for a device,
		// never take the cache lookup, never run Step 2.
		for _, span := range []string{trace.SpanDeviceWait, trace.SpanCacheLookup, trace.SpanCostMatrix} {
			if c := res.Stats.Span(span).Count; c != 0 {
				t.Errorf("follower %d ran %d %q spans, want 0", i, c, span)
			}
		}
	}

	if v := metricValue(t, ts.URL, "mosaic_service_batch_waves_total"); v != 1 {
		t.Errorf("batch_waves_total = %v, want 1", v)
	}
	if v := metricValue(t, ts.URL, "mosaic_service_batched_jobs_total"); v != followers {
		t.Errorf("batched_jobs_total = %v, want %d", v, followers)
	}
	if v := metricValue(t, ts.URL, "mosaic_service_cache_hits_total"); v != followers {
		t.Errorf("cache_hits_total = %v, want %d", v, followers)
	}
	if v := metricValue(t, ts.URL, "mosaic_service_cache_misses_total"); v != 1 {
		t.Errorf("cache_misses_total = %v, want 1", v)
	}
}

// TestNoBatchingConfig pins the opt-out: with NoBatching set, a gated
// same-content burst settles job by job — no waves, every job takes its own
// cache lookup.
func TestNoBatchingConfig(t *testing.T) {
	const size, tiles, jobs = 64, 8, 3
	input := mustScene(t, "lena", size)
	target := mustScene(t, "gradient", size)
	release := make(chan struct{})
	svc, ts := newTestServer(t, Config{
		Workers:      1,
		QueueDepth:   jobs,
		NoBatching:   true,
		testJobStart: func(*Job) { <-release },
	})
	var all []*Job
	for i := 0; i < jobs; i++ {
		job, err := svc.Submit(&Request{Input: input, Target: target, Tiles: tiles})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		all = append(all, job)
	}
	close(release)
	for _, job := range all {
		<-job.Done()
		st, res, err := job.Snapshot()
		if err != nil || st != JobDone {
			t.Fatalf("job %s: state %s, err %v", job.ID, st, err)
		}
		if c := res.Stats.Span(trace.SpanCacheLookup).Count; c != 1 {
			t.Errorf("job %s took %d cache lookups, want 1 (unbatched path)", job.ID, c)
		}
	}
	if v := metricValue(t, ts.URL, "mosaic_service_batch_waves_total"); v != 0 {
		t.Errorf("batch_waves_total = %v with NoBatching, want 0", v)
	}
}
