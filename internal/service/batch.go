package service

import (
	"errors"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// lease is one job's (or one Finish wave's) hold on an execution venue:
// either an exclusively-acquired pool device or, when the whole pool is
// quarantined and CPU fallback is allowed, the host.
type lease struct {
	dev  *cuda.Device // nil for the host lease
	name string       // pool label ("0", "1", ...) or "host"
}

// host reports whether the lease is the CPU-fallback venue.
func (l *lease) host() bool { return l.dev == nil }

// acquireLease leases a device for the job (recording the wait on the job's
// tree) or degrades to a host lease when the pool is fully quarantined and
// fallback is enabled. Any other acquire failure — context deadline while
// waiting, fallback disabled — is the job's error.
func (s *Service) acquireLease(job *Job) (*lease, error) {
	devSpan := job.tree.StartSpan(trace.SpanDeviceWait)
	dev, err := s.devices.Acquire(job.ctx)
	devSpan.End()
	switch {
	case err == nil:
		l := &lease{dev: dev, name: s.devices.Name(dev)}
		job.device = l.name
		return l, nil
	case errors.Is(err, ErrAllQuarantined) && !s.cfg.NoCPUFallback:
		job.device = "host"
		return &lease{name: "host"}, nil
	default:
		return nil, err
	}
}

// reportDevice records one job's health outcome against the leased device.
// Health is reported before Release (the pool's documented ordering), and per
// job even inside a wave: each settled job is one outcome, so a faulting
// device accumulates streak at the same rate batched or not.
func (s *Service) reportDevice(job *Job, l *lease) {
	if l.host() {
		return
	}
	st := job.tree.Snapshot()
	job.quarantined = s.devices.Report(l.dev,
		st.Counter(trace.CounterLaunchFaults),
		st.Counter(trace.CounterDegradedRuns) > 0)
}

// releaseLease returns the device to the pool; host leases hold nothing.
func (s *Service) releaseLease(l *lease) {
	if !l.host() {
		s.devices.Release(l.dev)
	}
}

// claimBatch claims every still-pending job with the given content hash. The
// index entry is removed atomically under mu, then each job is claimed by the
// settlement CAS — a job a worker or Close won in the meantime is simply not
// part of the wave.
func (s *Service) claimBatch(key string) []*Job {
	s.mu.Lock()
	list := s.pending[key]
	delete(s.pending, key)
	s.mu.Unlock()
	claimed := list[:0]
	for _, j := range list {
		if j.claimed.CompareAndSwap(false, true) {
			claimed = append(claimed, j)
		}
	}
	return claimed
}

// finishWave runs the micro-batch: after the leader settled, every queued job
// sharing its prepared work is claimed and settled on the same still-held
// lease. Followers skip their own device wait and cache lookup entirely —
// the amortization this exists for — and each runs FinishContext on the
// shared immutable Prepared, so outputs are bit-identical to unbatched runs.
// The leader is settled before the wave starts, so batching never inflates
// the latency of the job that paid for the prepare.
func (s *Service) finishWave(leader *Job, prep *core.Prepared, l *lease) {
	followers := s.claimBatch(leader.contentHash)
	if len(followers) == 0 {
		return
	}
	s.batchWaves.Inc()
	size := len(followers) + 1 // leader included
	s.batchSize.Observe(float64(size))
	for _, job := range followers {
		s.runBatched(job, prep, l, size)
	}
}

// runBatched settles one follower inside a wave: same observability contract
// as a worker-run job (queue-wait close, running state, cache annotation,
// trace settlement), but on the leader's lease and against the leader's
// Prepared. A follower whose deadline already expired fails fast inside
// FinishContext with its context error — claimed jobs always settle.
func (s *Service) runBatched(job *Job, prep *core.Prepared, l *lease, size int) {
	s.beginJob(job)
	s.inFlight.Inc()
	defer s.inFlight.Dec()
	job.device = l.name
	job.batched = true
	job.batchWave = size

	tr := trace.Multi(job.tree, telemetry.NewTraceCollector(s.reg))
	if l.host() {
		trace.Count(tr, trace.CounterDegradedRuns, 1)
	}
	// The shared Prepared is this job's cache outcome: a hit it never had to
	// look up.
	job.cacheLabel = cacheLabel(true)
	trace.Annotate(job.reqSpan, trace.AttrCache, job.cacheLabel)
	s.cacheHits.Inc()

	opts := s.jobOptions(job, l, tr)
	res, err := s.finishAndEncode(job, prep, opts)
	if err == nil {
		res.CacheHit = true
	}
	s.reportDevice(job, l)
	s.settleJob(job, res, err)
	s.batchedJobs.Inc()
}
