package service

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/imgutil"
	"repro/internal/metric"
)

// prepCache is a content-addressed LRU of core.Prepared values — the
// histogram-matched input, tile grids, both columnar tile stores and the
// S×S error matrix of one (input, target, geometry, metric) combination.
// Repeated requests against the same target/tile library are the photomosaic
// serving pattern, and Step 2 dominates their cost, so a hit skips it
// entirely: the job runs only Step 3 + assembly on the shared Prepared (safe
// — Prepared and its stores are immutable and FinishContext is
// concurrency-clean).
//
// Capacity is bounded in bytes (Prepared.MemoryBytes as the weight, which
// charges the stores' padded pixel blocks and per-tile stats alongside the
// matrix);
// eviction is least-recently-used. Concurrent misses on one key are
// deduplicated: followers wait for the leader's build instead of stampeding
// the device pool with identical Step-2 work.
type prepCache struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	ll        *list.List // MRU at the front; values are *cacheEntry
	items     map[string]*list.Element
	inflight  map[string]*flight
	evictions int64
}

type cacheEntry struct {
	key  string
	prep *core.Prepared
	size int64
}

// flight is one in-progress build; followers block on done.
type flight struct {
	done chan struct{}
	prep *core.Prepared
	err  error
}

func newPrepCache(capBytes int64) *prepCache {
	return &prepCache{
		capBytes: capBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// getOrPrepare returns the Prepared for key, building it with build on a
// miss. hit reports whether Step 2 was skipped — true for a cached value
// and for a follower that reused a concurrent leader's build.
func (c *prepCache) getOrPrepare(ctx context.Context, key string, build func() (*core.Prepared, error)) (prep *core.Prepared, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		prep = el.Value.(*cacheEntry).prep
		c.mu.Unlock()
		return prep, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if fl.err == nil {
			return fl.prep, true, nil
		}
		// The leader failed (possibly on its own cancelled context);
		// build independently rather than inheriting its error.
		prep, err = build()
		if err != nil {
			return nil, false, err
		}
		c.insert(key, prep)
		return prep, false, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.prep, fl.err = build()
	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.insertLocked(key, fl.prep)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.prep, false, fl.err
}

func (c *prepCache) insert(key string, prep *core.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, prep)
}

// insertLocked adds (or refreshes) an entry and evicts from the LRU tail
// until the byte budget holds. The newest entry always stays, even when it
// alone exceeds the budget — failing to cache would make an oversized
// workload rebuild Step 2 on every request, the exact behaviour the cache
// exists to avoid; evictions reclaim the space as soon as anything else
// arrives.
func (c *prepCache) insertLocked(key string, prep *core.Prepared) {
	if c.capBytes <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).prep = prep
		return
	}
	e := &cacheEntry{key: key, prep: prep, size: prep.MemoryBytes()}
	c.items[key] = c.ll.PushFront(e)
	c.bytes += e.size
	for c.bytes > c.capBytes && c.ll.Len() > 1 {
		tail := c.ll.Back()
		ev := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ev.key)
		c.bytes -= ev.size
		c.evictions++
	}
}

// contains reports whether key is resident, without bumping LRU order — the
// peek path behind HEAD /v1/prepared/{hash}. A peek is not a use: routers
// probe every node, and promoting on probe would let remote peeks distort
// eviction.
func (c *prepCache) contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// stats returns the entry count, resident bytes and lifetime evictions.
func (c *prepCache) stats() (entries int, bytes int64, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.evictions
}

// cacheKey is core.ContentHash — the one content address shared by this
// cache, the peek endpoint and the cluster router's hash routing.
func cacheKey(input, target *imgutil.Gray, tiles int, met metric.Metric, noHist bool) string {
	return core.ContentHash(input, target, tiles, met, noHist)
}
