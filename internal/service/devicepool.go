package service

import (
	"context"
	"fmt"

	"repro/internal/cuda"
)

// DevicePool owns a fixed set of virtual devices and hands each out to at
// most one job at a time. Kernel launches on a cuda.Device must be
// serialised (a concurrent launch panics — see internal/cuda), so the pool
// routes every lease through the device's cooperative AcquireContext path:
// a job never sees a device another job is still launching on, which is the
// invariant that keeps the launch-guard panic impossible in server context.
type DevicePool struct {
	free chan *cuda.Device
	size int
}

// NewDevicePool returns a pool of n devices (n ≤ 0 selects 1), each with
// workersPer kernel workers (≤ 0 selects all cores).
func NewDevicePool(n, workersPer int) *DevicePool {
	if n <= 0 {
		n = 1
	}
	p := &DevicePool{free: make(chan *cuda.Device, n), size: n}
	for i := 0; i < n; i++ {
		p.free <- cuda.New(workersPer)
	}
	return p
}

// Acquire leases a device, blocking until one is free or ctx is done. The
// returned device is exclusively held (cuda.AcquireContext) until Release.
func (p *DevicePool) Acquire(ctx context.Context) (*cuda.Device, error) {
	select {
	case d := <-p.free:
		// The pool is the only path handing devices out, so this acquire
		// succeeds immediately; it is taken anyway so even a device leaked
		// to a direct caller cannot be double-leased.
		if err := d.AcquireContext(ctx); err != nil {
			p.free <- d
			return nil, err
		}
		return d, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("service: device acquire: %w", ctx.Err())
	}
}

// Release returns a leased device to the pool.
func (p *DevicePool) Release(d *cuda.Device) {
	d.Release()
	select {
	case p.free <- d:
	default:
		panic("service: Release of a device the pool did not lease")
	}
}

// Size returns the number of devices in the pool.
func (p *DevicePool) Size() int { return p.size }

// Idle returns the number of devices currently free.
func (p *DevicePool) Idle() int { return len(p.free) }
