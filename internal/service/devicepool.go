package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/cuda"
	"repro/internal/telemetry"
)

// ErrAllQuarantined reports an Acquire against a pool whose every device is
// quarantined. The service turns it into a CPU-only run (or, with fallback
// disabled, a 503 and a not-ready /readyz).
var ErrAllQuarantined = errors.New("service: all devices quarantined")

// PoolConfig sizes and instruments a DevicePool. The zero value of any
// field selects the documented default.
type PoolConfig struct {
	// Devices is the pool size (≤ 0 selects 1); WorkersPer is each device's
	// kernel worker count (≤ 0 selects all cores).
	Devices    int
	WorkersPer int
	// Faults optionally installs a fault injector on device i at
	// construction — the -chaos drill hook. nil injectors leave the device
	// healthy.
	Faults func(i int) cuda.FaultInjector
	// FailureThreshold is the circuit breaker: this many consecutive failed
	// jobs (degraded or device-lost) quarantines the device (default 3).
	// A lost device is quarantined immediately regardless of streak.
	FailureThreshold int
	// ProbeInterval paces the background health probe that retries
	// quarantined devices with a canary kernel (default 250ms).
	ProbeInterval time.Duration
	// Registry optionally receives the quarantine metrics
	// (mosaic_device_{quarantined,restored,faults}_total); nil records
	// nothing.
	Registry *telemetry.Registry
}

func (c *PoolConfig) applyDefaults() {
	if c.Devices <= 0 {
		c.Devices = 1
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
}

// deviceHealth is the pool's book on one device. Guarded by DevicePool.mu.
type deviceHealth struct {
	name        string // stable label for metrics ("0", "1", ...)
	streak      int    // consecutive failed jobs
	quarantined bool
}

// DevicePool owns a fixed set of virtual devices and hands each out to at
// most one job at a time. Kernel launches on a cuda.Device must be
// serialised (a concurrent launch panics — see internal/cuda), so the pool
// routes every lease through the device's cooperative AcquireContext path:
// a job never sees a device another job is still launching on, which is the
// invariant that keeps the launch-guard panic impossible in server context.
//
// The pool also tracks health: jobs report faults and degradations via
// Report (while still holding the lease), a consecutive-failure circuit
// breaker quarantines sick devices — they are parked instead of returned to
// the free list — and a background probe launches a canary kernel against
// each quarantined device, restoring it on success. When every device is
// quarantined, Acquire fails fast with ErrAllQuarantined rather than
// blocking forever.
type DevicePool struct {
	free chan *cuda.Device
	size int
	cfg  PoolConfig

	mu          sync.Mutex
	health      map[*cuda.Device]*deviceHealth
	quarantined int
	probeOn     bool
	closed      bool
	probeStop   chan struct{}

	quarantinedTotal *telemetry.Counter
	restoredTotal    *telemetry.Counter
	faultsTotal      func(device string) *telemetry.Counter
}

// NewDevicePool returns a plain pool of n devices (n ≤ 0 selects 1), each
// with workersPer kernel workers (≤ 0 selects all cores), with default
// health tracking and no metrics — the compatibility constructor.
func NewDevicePool(n, workersPer int) *DevicePool {
	return NewDevicePoolConfig(PoolConfig{Devices: n, WorkersPer: workersPer})
}

// NewDevicePoolConfig returns a pool per cfg.
func NewDevicePoolConfig(cfg PoolConfig) *DevicePool {
	cfg.applyDefaults()
	p := &DevicePool{
		free:      make(chan *cuda.Device, cfg.Devices),
		size:      cfg.Devices,
		cfg:       cfg,
		health:    make(map[*cuda.Device]*deviceHealth, cfg.Devices),
		probeStop: make(chan struct{}),
	}
	for i := 0; i < cfg.Devices; i++ {
		d := cuda.New(cfg.WorkersPer)
		if cfg.Faults != nil {
			if inj := cfg.Faults(i); inj != nil {
				d.WithFaults(inj)
			}
		}
		p.health[d] = &deviceHealth{name: strconv.Itoa(i)}
		p.free <- d
	}
	if reg := cfg.Registry; reg != nil {
		p.quarantinedTotal = reg.Counter("mosaic_device_quarantined_total",
			"Devices quarantined by the consecutive-failure circuit breaker.", nil)
		p.restoredTotal = reg.Counter("mosaic_device_restored_total",
			"Quarantined devices restored by a successful canary probe.", nil)
		p.faultsTotal = func(device string) *telemetry.Counter {
			return reg.Counter("mosaic_device_faults_total",
				"Device launch faults observed by jobs and probes.",
				telemetry.Labels{"device": device})
		}
	}
	return p
}

// Acquire leases a device, blocking until one is free or ctx is done. The
// returned device is exclusively held (cuda.AcquireContext) until Release.
// When every device is quarantined Acquire fails fast with
// ErrAllQuarantined — including when devices become quarantined while the
// call is already waiting.
func (p *DevicePool) Acquire(ctx context.Context) (*cuda.Device, error) {
	// The re-check tick covers the race where the last healthy device is
	// quarantined after this call started blocking on an empty free list.
	const recheck = 5 * time.Millisecond
	for {
		if p.AllQuarantined() {
			return nil, ErrAllQuarantined
		}
		t := time.NewTimer(recheck)
		select {
		case d := <-p.free:
			t.Stop()
			// The pool is the only path handing devices out, so this acquire
			// succeeds immediately; it is taken anyway so even a device leaked
			// to a direct caller cannot be double-leased.
			if err := d.AcquireContext(ctx); err != nil {
				p.free <- d
				return nil, err
			}
			return d, nil
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("service: device acquire: %w", ctx.Err())
		case <-t.C:
		}
	}
}

// Release returns a leased device to the pool — or parks it when the lease's
// Report quarantined it, leaving restoration to the probe.
func (p *DevicePool) Release(d *cuda.Device) {
	d.Release()
	p.mu.Lock()
	h, ok := p.health[d]
	if !ok {
		p.mu.Unlock()
		panic("service: Release of a device the pool did not lease")
	}
	parked := h.quarantined
	p.mu.Unlock()
	if parked {
		return
	}
	select {
	case p.free <- d:
	default:
		panic("service: Release of a device the pool did not lease")
	}
}

// Report records one job's device health outcome. Call it while still
// holding the lease (before Release), so a quarantine decision lands before
// the device could be handed to the next job. faults is the number of
// launch faults the job observed; degraded reports whether the job fell
// back to the host. A job with neither clears the failure streak; a lost
// device is quarantined immediately. The return reports whether THIS call
// quarantined the device — the per-request quarantine marker the flight
// recorder annotates.
func (p *DevicePool) Report(d *cuda.Device, faults int64, degraded bool) bool {
	lost := d.Lost()
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.health[d]
	if !ok {
		return false
	}
	if faults > 0 && p.faultsTotal != nil {
		p.faultsTotal(h.name).Add(float64(faults))
	}
	switch {
	case lost || degraded:
		h.streak++
	case faults == 0:
		h.streak = 0
	}
	if !h.quarantined && (lost || h.streak >= p.cfg.FailureThreshold) {
		h.quarantined = true
		p.quarantined++
		if p.quarantinedTotal != nil {
			p.quarantinedTotal.Inc()
		}
		p.startProbeLocked()
		return true
	}
	return false
}

// Name returns the pool's stable label for a device ("0", "1", ...), or ""
// for a device the pool does not own (including nil — the host-fallback
// case, which callers label themselves).
func (p *DevicePool) Name(d *cuda.Device) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if h, ok := p.health[d]; ok {
		return h.name
	}
	return ""
}

// startProbeLocked lazily starts the background probe on first quarantine,
// so pools that never see a fault never spawn the goroutine.
func (p *DevicePool) startProbeLocked() {
	if p.probeOn || p.closed {
		return
	}
	p.probeOn = true
	go p.probeLoop()
}

// probeLoop retries quarantined devices on a ticker until Close.
func (p *DevicePool) probeLoop() {
	t := time.NewTicker(p.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.probeStop:
			return
		case <-t.C:
			p.probeQuarantined()
		}
	}
}

// probeQuarantined resets and canaries every quarantined device: a clean
// canary restores the device to the free list; a failed one (the injector
// still says no, or the device reports lost again) leaves it quarantined
// for the next tick.
func (p *DevicePool) probeQuarantined() {
	p.mu.Lock()
	var targets []*cuda.Device
	for d, h := range p.health {
		if h.quarantined {
			targets = append(targets, d)
		}
	}
	p.mu.Unlock()
	for _, d := range targets {
		// Quarantined devices are parked, so the acquire always succeeds;
		// TryAcquire guards against future callers holding them directly.
		if !d.TryAcquire() {
			continue
		}
		d.ClearLost()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := d.Canary(ctx)
		cancel()
		d.Release()
		p.mu.Lock()
		h := p.health[d]
		if h == nil || !h.quarantined {
			p.mu.Unlock()
			continue
		}
		if err == nil {
			h.quarantined = false
			h.streak = 0
			p.quarantined--
			if p.restoredTotal != nil {
				p.restoredTotal.Inc()
			}
			p.mu.Unlock()
			p.free <- d
			continue
		}
		if p.faultsTotal != nil {
			p.faultsTotal(h.name).Inc()
		}
		p.mu.Unlock()
	}
}

// Close stops the background probe. Leased devices are unaffected; the pool
// must not be used after Close.
func (p *DevicePool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.probeStop)
}

// Size returns the number of devices in the pool.
func (p *DevicePool) Size() int { return p.size }

// Idle returns the number of devices currently free (quarantined devices
// are not free).
func (p *DevicePool) Idle() int { return len(p.free) }

// Quarantined returns the number of currently quarantined devices.
func (p *DevicePool) Quarantined() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quarantined
}

// AllQuarantined reports whether every device in the pool is quarantined.
func (p *DevicePool) AllQuarantined() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quarantined == p.size
}
