package perm

import (
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	p := Identity(5)
	if !p.IsIdentity() {
		t.Errorf("Identity(5) = %v", p)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if p.FixedPoints() != 5 {
		t.Errorf("FixedPoints = %d, want 5", p.FixedPoints())
	}
}

func TestValidateRejectsBadSlices(t *testing.T) {
	cases := []struct {
		name string
		p    Perm
	}{
		{"out-of-range-high", Perm{0, 1, 3}},
		{"out-of-range-negative", Perm{0, -1, 2}},
		{"duplicate", Perm{0, 1, 1}},
		{"all-same", Perm{2, 2, 2}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %v", tc.name, tc.p)
		}
	}
	if err := (Perm{}).Validate(); err != nil {
		t.Errorf("empty permutation rejected: %v", err)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN)%40 + 1
		p := Random(n, seed)
		inv := p.Inverse()
		return p.Compose(inv).IsIdentity() && inv.Compose(p).IsIdentity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComposeAssociativity(t *testing.T) {
	f := func(s1, s2, s3 uint64, rawN uint8) bool {
		n := int(rawN)%20 + 1
		a, b, c := Random(n, s1), Random(n, s2), Random(n, s3)
		return a.Compose(b).Compose(c).Equal(a.Compose(b.Compose(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComposeIdentityIsNeutral(t *testing.T) {
	p := Random(12, 99)
	id := Identity(12)
	if !p.Compose(id).Equal(p) || !id.Compose(p).Equal(p) {
		t.Error("identity is not neutral under Compose")
	}
}

func TestComposePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compose with mismatched lengths did not panic")
		}
	}()
	Identity(3).Compose(Identity(4))
}

func TestComposeDefinition(t *testing.T) {
	// r[i] = p[q[i]].
	p := Perm{2, 0, 1}
	q := Perm{1, 2, 0}
	r := p.Compose(q)
	want := Perm{p[1], p[2], p[0]}
	if !r.Equal(want) {
		t.Errorf("Compose = %v, want %v", r, want)
	}
}

func TestCyclesPartition(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN)%30 + 1
		p := Random(n, seed)
		cycles := p.Cycles()
		seen := make([]bool, n)
		total := 0
		for _, cyc := range cycles {
			if len(cyc) == 0 {
				return false
			}
			for i, v := range cyc {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
				// Consecutive elements follow p.
				next := cyc[(i+1)%len(cyc)]
				if p[v] != next {
					return false
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclesOfIdentity(t *testing.T) {
	cycles := Identity(4).Cycles()
	if len(cycles) != 4 {
		t.Fatalf("identity has %d cycles, want 4", len(cycles))
	}
	for i, c := range cycles {
		if len(c) != 1 || c[0] != i {
			t.Errorf("cycle %d = %v", i, c)
		}
	}
}

func TestCyclesOfSingleSwap(t *testing.T) {
	p := Perm{1, 0, 2}
	cycles := p.Cycles()
	if len(cycles) != 2 {
		t.Fatalf("cycles = %v", cycles)
	}
	if len(cycles[0]) != 2 || len(cycles[1]) != 1 {
		t.Errorf("cycles = %v", cycles)
	}
}

func TestRandomIsValidAndSeeded(t *testing.T) {
	for _, n := range []int{1, 2, 10, 257} {
		a := Random(n, 7)
		if err := a.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if !a.Equal(Random(n, 7)) {
			t.Errorf("n=%d: Random is not deterministic for a fixed seed", n)
		}
	}
	if Random(100, 1).Equal(Random(100, 2)) {
		t.Error("different seeds gave the same permutation of 100 elements")
	}
}

func TestRandomIsRoughlyUniform(t *testing.T) {
	// χ²-flavoured sanity check: over many seeds, element 0 should land in
	// every slot of a 4-permutation with roughly equal frequency.
	const trials = 4000
	var counts [4]int
	for seed := 0; seed < trials; seed++ {
		p := Random(4, uint64(seed))
		for i, v := range p {
			if v == 0 {
				counts[i]++
			}
		}
	}
	for slot, c := range counts {
		if c < trials/4-trials/10 || c > trials/4+trials/10 {
			t.Errorf("slot %d: element 0 appeared %d/%d times (expected ≈%d)", slot, c, trials, trials/4)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := Random(10, 3)
	q := p.Clone()
	q[0], q[1] = q[1], q[0]
	if p.Equal(q) {
		t.Error("mutating the clone changed the original")
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if Identity(3).Equal(Identity(4)) {
		t.Error("permutations of different lengths reported equal")
	}
}

func TestFixedPointsAfterSwap(t *testing.T) {
	p := Identity(6)
	p[2], p[5] = p[5], p[2]
	if got := p.FixedPoints(); got != 4 {
		t.Errorf("FixedPoints = %d, want 4", got)
	}
}

func BenchmarkRandom4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Random(4096, uint64(i))
	}
}

func BenchmarkValidate4096(b *testing.B) {
	p := Random(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
