package mosaic_test

import (
	"fmt"
	"log"

	mosaic "repro"
)

// The scene generators and every algorithm in the library are fully
// deterministic, so these examples have stable outputs and double as
// regression tests for the headline numbers.

// Example generates a small photomosaic with the paper's default
// configuration (histogram matching, L1 error, the Algorithm-1 local
// search) and reports the Eq. (2) error.
func Example() {
	input, err := mosaic.Scene("lena", 128)
	if err != nil {
		log.Fatal(err)
	}
	target, err := mosaic.Scene("sailboat", 128)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("total error:", res.TotalError)
	fmt.Println("passes:", res.SearchStats.Passes)
	// Output:
	// total error: 129680
	// passes: 7
}

// ExampleGenerate_optimization contrasts the exact matching of §III with
// the local-search approximation on the same pair: the optimum is lower,
// but only slightly — the paper's Table I observation.
func ExampleGenerate_optimization() {
	input, _ := mosaic.Scene("lena", 128)
	target, _ := mosaic.Scene("sailboat", 128)
	opt, err := mosaic.Generate(input, target, mosaic.Options{
		TilesPerSide: 16,
		Algorithm:    mosaic.Optimization,
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimization:", opt.TotalError)
	fmt.Println("approximation is optimal or worse:", app.TotalError >= opt.TotalError)
	// Output:
	// optimization: 127550
	// approximation is optimal or worse: true
}

// ExampleNewColoring shows the precomputed edge coloring that schedules the
// parallel local search (§IV-B): K_16 needs exactly 15 colors (Theorem 1),
// and the first class is the one printed in the paper.
func ExampleNewColoring() {
	c := mosaic.NewColoring(16)
	fmt.Println("colors:", c.NumColors())
	first := c.Classes[0]
	// 1-based like the paper's listing.
	fmt.Printf("P1 = (%d,%d) (%d,%d) ...\n", first[0].U+1, first[0].V+1, first[1].U+1, first[1].V+1)
	// Output:
	// colors: 15
	// P1 = (1,2) (3,15) ...
}

// ExampleHistogramMatch demonstrates the §II preprocessing: the input's
// intensity distribution is reshaped to the target's before rearrangement.
func ExampleHistogramMatch() {
	input, _ := mosaic.Scene("tiffany", 64) // high-key: bright, compressed
	target, _ := mosaic.Scene("sailboat", 64)
	matched, err := mosaic.HistogramMatch(input, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input mean %.0f → matched mean %.0f (target %.0f)\n",
		input.MeanIntensity(), matched.MeanIntensity(), target.MeanIntensity())
	// Output:
	// input mean 190 → matched mean 152 (target 150)
}
