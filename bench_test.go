// Benchmarks regenerating the paper's evaluation, one benchmark family per
// table/figure (run `go test -bench . -benchmem`). They use the Lena→
// Sailboat pair at 512×512 — the paper's headline configuration — with the
// larger image sizes behind cmd/mosaicbench, which sweeps the full grid of
// Tables II–IV and also prints the tables in the paper's layout.
//
//	Table I   → BenchmarkTable1_*  (quality: errors reported via b.ReportMetric)
//	Table II  → BenchmarkTable2_*  (Step-2 error matrix, CPU vs device)
//	Table III → BenchmarkTable3_*  (Step-3 rearrangement, all three engines)
//	Table IV  → BenchmarkTable4_*  (end-to-end pipelines)
//	Fig. 7    → BenchmarkFigure7_* (mosaic generation across S)
//	Fig. 8    → BenchmarkFigure8_* (the other scene pairs)
package mosaic_test

import (
	"fmt"
	"testing"

	mosaic "repro"
	"repro/internal/assign"
	"repro/internal/cuda"
	"repro/internal/edgecolor"
	"repro/internal/hist"
	"repro/internal/localsearch"
	"repro/internal/metric"
	"repro/internal/perm"
	"repro/internal/synth"
	"repro/internal/tile"
)

// benchGrids prepares histogram-matched input and target grids.
func benchGrids(b *testing.B, in, tgt synth.Scene, n, tiles int) (*tile.Grid, *tile.Grid) {
	b.Helper()
	input := synth.MustGenerate(in, n)
	target := synth.MustGenerate(tgt, n)
	matched, err := hist.Match(input, target)
	if err != nil {
		b.Fatal(err)
	}
	ig, err := tile.NewGridByCount(matched, tiles)
	if err != nil {
		b.Fatal(err)
	}
	tg, err := tile.NewGridByCount(target, tiles)
	if err != nil {
		b.Fatal(err)
	}
	return ig, tg
}

func benchCosts(b *testing.B, n, tiles int) *metric.Matrix {
	b.Helper()
	ig, tg := benchGrids(b, synth.Lena, synth.Sailboat, n, tiles)
	m, err := metric.BuildSerial(ig, tg, metric.L1)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// tileCounts is the paper's S sweep (tiles per side).
var tileCounts = []int{16, 32, 64}

// BenchmarkTable1_TotalError reports the Table I quality numbers: it runs
// each rearrangement engine once per iteration and reports the achieved
// total error as a custom metric, so `-bench Table1` prints the paper's
// error comparison alongside the times.
func BenchmarkTable1_TotalError(b *testing.B) {
	for _, tiles := range tileCounts {
		costs := benchCosts(b, 512, tiles)
		s := tiles * tiles
		coloring := edgecolor.Complete(s)
		dev := cuda.New(0)

		b.Run(fmt.Sprintf("S=%dx%d/optimization", tiles, tiles), func(b *testing.B) {
			var e int64
			for i := 0; i < b.N; i++ {
				p, err := assign.JV(s, costs.W)
				if err != nil {
					b.Fatal(err)
				}
				e = costs.Total(p)
			}
			b.ReportMetric(float64(e), "total-error")
		})
		b.Run(fmt.Sprintf("S=%dx%d/approx-cpu", tiles, tiles), func(b *testing.B) {
			var e int64
			for i := 0; i < b.N; i++ {
				p, _, err := localsearch.Serial(costs, perm.Identity(s), localsearch.Options{})
				if err != nil {
					b.Fatal(err)
				}
				e = costs.Total(p)
			}
			b.ReportMetric(float64(e), "total-error")
		})
		b.Run(fmt.Sprintf("S=%dx%d/approx-gpu", tiles, tiles), func(b *testing.B) {
			var e int64
			for i := 0; i < b.N; i++ {
				p, _, err := localsearch.Parallel(dev, costs, perm.Identity(s), coloring, localsearch.Options{})
				if err != nil {
					b.Fatal(err)
				}
				e = costs.Total(p)
			}
			b.ReportMetric(float64(e), "total-error")
		})
	}
}

// BenchmarkTable2_ErrorMatrix times Step 2 (the S×S tile-error matrix),
// serial versus the CUDA-shaped device kernel — Table II's two columns.
func BenchmarkTable2_ErrorMatrix(b *testing.B) {
	dev := cuda.New(0)
	for _, tiles := range tileCounts {
		ig, tg := benchGrids(b, synth.Lena, synth.Sailboat, 512, tiles)
		b.Run(fmt.Sprintf("N=512/S=%dx%d/cpu", tiles, tiles), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := metric.BuildSerial(ig, tg, metric.L1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("N=512/S=%dx%d/gpu", tiles, tiles), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := metric.BuildDevice(dev, ig, tg, metric.L1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// One larger size to expose the N-dependence of Table II.
	ig, tg := benchGrids(b, synth.Lena, synth.Sailboat, 1024, 32)
	b.Run("N=1024/S=32x32/cpu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := metric.BuildSerial(ig, tg, metric.L1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("N=1024/S=32x32/gpu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := metric.BuildDevice(dev, ig, tg, metric.L1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable3_Rearrange times Step 3 for the three engines of Table III:
// exact matching on the CPU, Algorithm 1, and Algorithm 2 on the device.
func BenchmarkTable3_Rearrange(b *testing.B) {
	dev := cuda.New(0)
	for _, tiles := range tileCounts {
		costs := benchCosts(b, 512, tiles)
		s := tiles * tiles
		coloring := edgecolor.Complete(s)
		b.Run(fmt.Sprintf("S=%dx%d/optimization-cpu", tiles, tiles), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assign.JV(s, costs.W); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("S=%dx%d/approx-cpu", tiles, tiles), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := localsearch.Serial(costs, perm.Identity(s), localsearch.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("S=%dx%d/approx-gpu", tiles, tiles), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := localsearch.Parallel(dev, costs, perm.Identity(s), coloring, localsearch.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4_EndToEnd times the four full pipelines of Table IV:
// optimization with and without the device-built matrix, approximation on
// CPU and fully on the device.
func BenchmarkTable4_EndToEnd(b *testing.B) {
	input := synth.MustGenerate(synth.Lena, 512)
	target := synth.MustGenerate(synth.Sailboat, 512)
	dev := cuda.New(0)
	for _, tiles := range []int{16, 32} { // 64² optimization moved to cmd/mosaicbench
		variants := []struct {
			name string
			opts mosaic.Options
		}{
			{"optimization-cpu", mosaic.Options{TilesPerSide: tiles, Algorithm: mosaic.Optimization}},
			{"optimization-cpu+gpu", mosaic.Options{TilesPerSide: tiles, Algorithm: mosaic.Optimization, Device: dev}},
			{"approx-cpu", mosaic.Options{TilesPerSide: tiles, Algorithm: mosaic.Approximation}},
			{"approx-gpu", mosaic.Options{TilesPerSide: tiles, Algorithm: mosaic.ParallelApproximation, Device: dev, Coloring: mosaic.NewColoring(tiles * tiles)}},
		}
		for _, v := range variants {
			b.Run(fmt.Sprintf("S=%dx%d/%s", tiles, tiles, v.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := mosaic.Generate(input, target, v.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure7_Generation regenerates the Figure 7 panels (approximation
// engine across the three tile counts; the optimization panels are timed by
// Table3/Table4 above).
func BenchmarkFigure7_Generation(b *testing.B) {
	input := synth.MustGenerate(synth.Lena, 512)
	target := synth.MustGenerate(synth.Sailboat, 512)
	for _, tiles := range tileCounts {
		b.Run(fmt.Sprintf("S=%dx%d", tiles, tiles), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: tiles}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure8_Pairs regenerates the Figure 8 mosaics: the three
// remaining scene pairs at S = 32×32 with the optimization engine.
func BenchmarkFigure8_Pairs(b *testing.B) {
	pairs := []struct{ in, tgt synth.Scene }{
		{synth.Airplane, synth.Lena},
		{synth.Peppers, synth.Barbara},
		{synth.Tiffany, synth.Baboon},
	}
	for _, p := range pairs {
		input := synth.MustGenerate(p.in, 512)
		target := synth.MustGenerate(p.tgt, 512)
		b.Run(fmt.Sprintf("%s-to-%s", p.in, p.tgt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 32, Algorithm: mosaic.Optimization}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Solvers compares the exact matchers on real tile
// matrices — the DESIGN.md solver ablation. The dedicated LAP solvers run
// at the paper's S = 32² scale; the general-graph blossom solver (the
// paper's actual algorithm family, far heavier constants) runs at S = 16².
func BenchmarkAblation_Solvers(b *testing.B) {
	costs := benchCosts(b, 512, 32)
	s := 32 * 32
	for name, solve := range map[string]assign.Func{
		"jv": assign.JV, "hungarian": assign.Hungarian, "auction": assign.Auction,
	} {
		b.Run(name+"/S=32x32", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solve(s, costs.W); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	small := benchCosts(b, 512, 16)
	for name, solve := range map[string]assign.Func{
		"jv": assign.JV, "blossom": assign.Blossom,
	} {
		b.Run(name+"/S=16x16", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solve(16*16, small.W); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_FirstVsBestImprovement quantifies why the paper's sweep
// applies swaps immediately (first improvement) instead of hunting the best
// swap per pass.
func BenchmarkAblation_FirstVsBestImprovement(b *testing.B) {
	costs := benchCosts(b, 256, 16)
	s := 16 * 16
	b.Run("first-improvement", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := localsearch.Serial(costs, perm.Identity(s), localsearch.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("best-improvement", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := localsearch.SerialBestImprovement(costs, perm.Identity(s), localsearch.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_KernelShape isolates the cost of the CUDA-shaped
// decomposition against plain row-parallelism for Step 2.
func BenchmarkAblation_KernelShape(b *testing.B) {
	ig, tg := benchGrids(b, synth.Lena, synth.Sailboat, 512, 32)
	dev := cuda.New(0)
	b.Run("cuda-blocks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := metric.BuildDevice(dev, ig, tg, metric.L1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("row-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := metric.BuildRowsParallel(dev, ig, tg, metric.L1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Orientations measures the 8× Step-2 cost of the
// dihedral-orientation extension and reports the error improvement it buys.
func BenchmarkAblation_Orientations(b *testing.B) {
	input := synth.MustGenerate(synth.Lena, 256)
	target := synth.MustGenerate(synth.Sailboat, 256)
	for _, oriented := range []bool{false, true} {
		name := "upright"
		if oriented {
			name = "oriented"
		}
		b.Run(name, func(b *testing.B) {
			var e int64
			for i := 0; i < b.N; i++ {
				res, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16, AllowOrientations: oriented})
				if err != nil {
					b.Fatal(err)
				}
				e = res.TotalError
			}
			b.ReportMetric(float64(e), "total-error")
		})
	}
}

// BenchmarkAblation_ProxyResolution sweeps the reduced-resolution matching
// shortcut: Step-2 cost falls with d² while the (exactly evaluated) error
// degrades gracefully.
func BenchmarkAblation_ProxyResolution(b *testing.B) {
	input := synth.MustGenerate(synth.Lena, 512)
	target := synth.MustGenerate(synth.Sailboat, 512)
	for _, d := range []int{0, 8, 4, 2} { // 0 = exact; tile side is 16
		name := fmt.Sprintf("d=%d", d)
		if d == 0 {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			var e int64
			for i := 0; i < b.N; i++ {
				res, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 32, ProxyResolution: d})
				if err != nil {
					b.Fatal(err)
				}
				e = res.TotalError
			}
			b.ReportMetric(float64(e), "total-error")
		})
	}
}

// BenchmarkAblation_Annealing compares the paper's local search with the
// annealing extension on quality-per-second.
func BenchmarkAblation_Annealing(b *testing.B) {
	costs := benchCosts(b, 256, 16)
	s := 16 * 16
	b.Run("algorithm1", func(b *testing.B) {
		var e int64
		for i := 0; i < b.N; i++ {
			p, _, err := localsearch.Serial(costs, perm.Identity(s), localsearch.Options{})
			if err != nil {
				b.Fatal(err)
			}
			e = costs.Total(p)
		}
		b.ReportMetric(float64(e), "total-error")
	})
	b.Run("anneal+polish", func(b *testing.B) {
		var e int64
		for i := 0; i < b.N; i++ {
			p, _, err := localsearch.AnnealThenPolish(costs, perm.Identity(s), localsearch.AnnealOptions{Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			e = costs.Total(p)
		}
		b.ReportMetric(float64(e), "total-error")
	})
}
