package mosaic_test

// claims_test encodes the paper's qualitative claims as end-to-end checks
// against the public API, at a scale small enough for the regular test
// suite. EXPERIMENTS.md verifies the same claims at the paper's full scale.

import (
	"testing"

	mosaic "repro"
)

// Paper §VI / Table I: the optimization algorithm's error is minimal; the
// approximation lands within a few percent; both beat doing nothing.
func TestClaimQualityOrdering(t *testing.T) {
	input, target := scenes(t, 256)
	errs := map[mosaic.Algorithm]int64{}
	dev := mosaic.NewDevice(0)
	for _, algo := range []mosaic.Algorithm{
		mosaic.Optimization, mosaic.Approximation, mosaic.ParallelApproximation,
		mosaic.GreedyBaseline, mosaic.IdentityBaseline,
	} {
		res, err := mosaic.Generate(input, target, mosaic.Options{
			TilesPerSide: 16, Algorithm: algo, Device: dev,
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		errs[algo] = res.TotalError
	}
	opt := errs[mosaic.Optimization]
	if errs[mosaic.Approximation] < opt || errs[mosaic.ParallelApproximation] < opt {
		t.Fatalf("an approximation beat the optimum: %v", errs)
	}
	if float64(errs[mosaic.Approximation]) > 1.05*float64(opt) {
		t.Errorf("approximation %d more than 5%% above optimum %d (paper: ~2%%)",
			errs[mosaic.Approximation], opt)
	}
	if errs[mosaic.GreedyBaseline] < errs[mosaic.Approximation] {
		t.Errorf("greedy %d beat the local search %d", errs[mosaic.GreedyBaseline], errs[mosaic.Approximation])
	}
	if errs[mosaic.IdentityBaseline] <= errs[mosaic.Approximation] {
		t.Errorf("identity %d not worse than local search %d", errs[mosaic.IdentityBaseline], errs[mosaic.Approximation])
	}
}

// Paper §VI / Figure 7: quality improves as S grows (smaller tiles
// reproduce the target more finely).
func TestClaimErrorFallsWithS(t *testing.T) {
	input, target := scenes(t, 256)
	var prev int64 = -1
	for _, tiles := range []int{8, 16, 32} {
		res, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: tiles})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.TotalError >= prev {
			t.Errorf("S=%d²: error %d did not fall below %d", tiles, res.TotalError, prev)
		}
		prev = res.TotalError
	}
}

// Paper §IV-A: the sweep count k stays O(10) — the reason the O(kS²) local
// search crushes the O(S³) matching at scale.
func TestClaimPassCountSmall(t *testing.T) {
	input, target := scenes(t, 256)
	for _, tiles := range []int{8, 16} {
		res, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: tiles})
		if err != nil {
			t.Fatal(err)
		}
		if res.SearchStats.Passes > 18 {
			t.Errorf("S=%d²: k = %d (paper observes ≤ 9–16)", tiles, res.SearchStats.Passes)
		}
	}
}

// Paper §II: adjusting the input's intensity distribution to the target's
// lowers the achievable error when the distributions are mismatched.
func TestClaimHistogramMatchingHelps(t *testing.T) {
	input, err := mosaic.Scene("tiffany", 256) // high-key
	if err != nil {
		t.Fatal(err)
	}
	target, err := mosaic.Scene("sailboat", 256)
	if err != nil {
		t.Fatal(err)
	}
	with, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	without, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16, NoHistogramMatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.TotalError >= without.TotalError {
		t.Errorf("histogram matching did not help: %d vs %d", with.TotalError, without.TotalError)
	}
}

// Paper §IV-B: the serial and parallel local searches visit swaps in
// different orders, so their errors differ slightly — but only slightly
// ("the difference is small", and "the quality ... cannot be
// distinguished").
func TestClaimParallelQualityParity(t *testing.T) {
	input, target := scenes(t, 256)
	serial, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := mosaic.Generate(input, target, mosaic.Options{
		TilesPerSide: 16, Algorithm: mosaic.ParallelApproximation, Device: mosaic.NewDevice(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(parallel.TotalError) / float64(serial.TotalError)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("parallel %d vs serial %d (ratio %.3f)", parallel.TotalError, serial.TotalError, ratio)
	}
}

// Paper §III: the reduction means every exact matcher yields the same
// minimum error regardless of algorithmic family — including the
// general-graph blossom method the paper itself uses.
func TestClaimReductionSolverIndependence(t *testing.T) {
	input, target := scenes(t, 128)
	var want int64 = -1
	for _, s := range []mosaic.Solver{mosaic.SolverJV, mosaic.SolverHungarian, mosaic.SolverAuction, mosaic.SolverBlossom} {
		res, err := mosaic.Generate(input, target, mosaic.Options{
			TilesPerSide: 16, Algorithm: mosaic.Optimization, Solver: s,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if want < 0 {
			want = res.TotalError
		} else if res.TotalError != want {
			t.Errorf("%s: %d, others %d", s, res.TotalError, want)
		}
	}
}
