package mosaic_test

import (
	"os"
	"path/filepath"
	"testing"

	mosaic "repro"
)

func scenes(t testing.TB, n int) (*mosaic.Gray, *mosaic.Gray) {
	t.Helper()
	input, err := mosaic.Scene("lena", n)
	if err != nil {
		t.Fatal(err)
	}
	target, err := mosaic.Scene("sailboat", n)
	if err != nil {
		t.Fatal(err)
	}
	return input, target
}

func TestQuickstartFlow(t *testing.T) {
	// The README quickstart, verbatim.
	input, target := scenes(t, 128)
	res, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mosaic == nil || res.TotalError <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	path := filepath.Join(t.TempDir(), "mosaic.png")
	if err := mosaic.SavePNG(path, res.Mosaic); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("PNG not written: %v", err)
	}
}

func TestOptimizationVsApproximationPublicAPI(t *testing.T) {
	input, target := scenes(t, 64)
	opt, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 8, Algorithm: mosaic.Optimization})
	if err != nil {
		t.Fatal(err)
	}
	app, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 8, Algorithm: mosaic.Approximation})
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalError > app.TotalError {
		t.Errorf("optimization error %d above approximation %d", opt.TotalError, app.TotalError)
	}
}

func TestParallelApproximationPublicAPI(t *testing.T) {
	input, target := scenes(t, 64)
	dev := mosaic.NewDevice(0)
	coloring := mosaic.NewColoring(64)
	res, err := mosaic.Generate(input, target, mosaic.Options{
		TilesPerSide: 8,
		Algorithm:    mosaic.ParallelApproximation,
		Device:       dev,
		Coloring:     coloring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSolverSelection(t *testing.T) {
	input, target := scenes(t, 64)
	var errs []int64
	for _, s := range []mosaic.Solver{mosaic.SolverJV, mosaic.SolverHungarian, mosaic.SolverAuction, mosaic.SolverBlossom} {
		res, err := mosaic.Generate(input, target, mosaic.Options{
			TilesPerSide: 8, Algorithm: mosaic.Optimization, Solver: s,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		errs = append(errs, res.TotalError)
	}
	if errs[0] != errs[1] || errs[0] != errs[2] {
		t.Errorf("exact solvers disagree: %v", errs)
	}
}

func TestMetricSelection(t *testing.T) {
	input, target := scenes(t, 64)
	l1, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 8, Metric: mosaic.L1})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 8, Metric: mosaic.L2})
	if err != nil {
		t.Fatal(err)
	}
	// Different objectives generally give different errors (reported in the
	// configured metric); both must be positive.
	if l1.TotalError <= 0 || l2.TotalError <= 0 {
		t.Error("degenerate metric results")
	}
}

func TestHistogramHelpers(t *testing.T) {
	input, target := scenes(t, 64)
	m, err := mosaic.HistogramMatch(input, target)
	if err != nil {
		t.Fatal(err)
	}
	if m.W != 64 {
		t.Error("matched image has wrong geometry")
	}
	e, err := mosaic.HistogramEqualize(input)
	if err != nil {
		t.Fatal(err)
	}
	if e.W != 64 {
		t.Error("equalized image has wrong geometry")
	}
}

func TestSceneNamesAndErrors(t *testing.T) {
	names := mosaic.SceneNames()
	if len(names) < 7 {
		t.Fatalf("only %d scenes", len(names))
	}
	for _, name := range names {
		if _, err := mosaic.Scene(name, 16); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := mosaic.Scene("not-a-scene", 16); err == nil {
		t.Error("unknown scene accepted")
	}
}

func TestColorFlow(t *testing.T) {
	in, err := mosaic.SceneRGB("peppers", 64)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := mosaic.SceneRGB("barbara", 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mosaic.GenerateRGB(in, tgt, mosaic.Options{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := mosaic.SavePNGRGB(filepath.Join(dir, "c.png"), res.Mosaic); err != nil {
		t.Fatal(err)
	}
	if err := mosaic.SavePPM(filepath.Join(dir, "c.ppm"), res.Mosaic); err != nil {
		t.Fatal(err)
	}
	back, err := mosaic.LoadPPM(filepath.Join(dir, "c.ppm"))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(res.Mosaic) {
		t.Error("PPM round trip changed the mosaic")
	}
}

func TestPGMRoundTripPublicAPI(t *testing.T) {
	input, _ := scenes(t, 32)
	path := filepath.Join(t.TempDir(), "x.pgm")
	if err := mosaic.SavePGM(path, input); err != nil {
		t.Fatal(err)
	}
	back, err := mosaic.LoadPGM(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(input) {
		t.Error("PGM round trip changed pixels")
	}
}

func TestResultTimingExposed(t *testing.T) {
	input, target := scenes(t, 128)
	res, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	var tm mosaic.Timing = res.Timing
	if tm.Total() <= 0 {
		t.Error("Timing.Total not positive")
	}
}

func TestAnnealingAlgorithmPublicAPI(t *testing.T) {
	input, target := scenes(t, 64)
	res, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 8, Algorithm: mosaic.Annealing})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	// The annealed+polished result must not lose to the identity baseline.
	id, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 8, Algorithm: mosaic.IdentityBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalError >= id.TotalError {
		t.Errorf("annealing %d did not improve on identity %d", res.TotalError, id.TotalError)
	}
}

func TestOrientationsPublicAPI(t *testing.T) {
	input, target := scenes(t, 64)
	plain, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	oriented, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 8, AllowOrientations: true})
	if err != nil {
		t.Fatal(err)
	}
	if oriented.TotalError > plain.TotalError {
		t.Errorf("oriented error %d above upright %d", oriented.TotalError, plain.TotalError)
	}
	if len(oriented.Orientations) != 64 {
		t.Errorf("Orientations length %d", len(oriented.Orientations))
	}
}

func TestProxyResolutionPublicAPI(t *testing.T) {
	input, target := scenes(t, 128)
	exact, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16, ProxyResolution: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Proxy-guided error is evaluated exactly and must equal the mosaic's
	// image-level error even though Step 3 ran on approximate costs.
	imgErr, err := proxy.Mosaic.AbsDiffSum(target)
	if err != nil {
		t.Fatal(err)
	}
	if proxy.TotalError != imgErr {
		t.Errorf("proxy TotalError %d != image error %d", proxy.TotalError, imgErr)
	}
	// Bounded quality loss vs. the exact pipeline.
	if float64(proxy.TotalError) > 1.35*float64(exact.TotalError) {
		t.Errorf("proxy error %d more than 35%% above exact %d", proxy.TotalError, exact.TotalError)
	}
	if _, err := mosaic.Generate(input, target, mosaic.Options{TilesPerSide: 16, ProxyResolution: 3}); err == nil {
		t.Error("accepted proxy resolution not dividing the tile side")
	}
}

func TestSequencerPublicAPI(t *testing.T) {
	input, err := mosaic.Scene("lena", 64)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := mosaic.Scene("sailboat", 128)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := mosaic.Pan(wide, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := mosaic.NewSequencer(input, mosaic.SequencerConfig{TilesPerSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	var last *mosaic.FrameResult
	for _, tgt := range targets {
		last, err = seq.Next(tgt)
		if err != nil {
			t.Fatal(err)
		}
	}
	if seq.Frames() != 3 || last == nil || last.TotalError <= 0 {
		t.Errorf("sequencer state wrong: frames=%d", seq.Frames())
	}
}
